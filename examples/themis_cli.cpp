// Command-line front end for the framework: run fuzzing campaigns and replay
// reproduction logs without writing any C++.
//
//   themis_cli fuzz   <hdfs|ceph|gluster|leo|geo> [options]
//   themis_cli replay <hdfs|ceph|gluster|leo|geo> <logfile> [--repeat N] [--bugs]
//   themis_cli fleet  run|worker|status ...   (multi-process campaign service,
//                     DESIGN.md §17; see `themis_cli fleet` for usage)
//
// Options for `fuzz` (runs a CampaignMatrix through the parallel runner):
//   --hours H       virtual campaign budget (default 24)
//   --seed S        matrix seed (default 1); per-campaign seeds are
//                   deterministic RNG streams split off it
//   --seeds N       repeated campaigns (default 1)
//   --jobs N        worker threads; results are identical for every N
//   --strategy X    a registered strategy: themis | themis- | fixreq |
//                   fixconf | alternate | concurrent, or any registry name
//   --threshold T   detector threshold t, e.g. 0.25
//   --historical    inject the 53-bug historical corpus instead of the 10 new bugs
//   --healthy       inject nothing (false-positive soak test)
//   --logs          write each confirmed failure's reproduction log to stdout
//   --telemetry-out=PATH  write the campaign event stream (JSONL) to PATH;
//                   event lines are byte-identical for every --jobs value
//   --metrics-summary     print the merged metrics registry table at the end
//   --checkpoint-dir=DIR  snapshot campaign state into DIR (DESIGN.md §11)
//   --checkpoint-every-ops N  mid-campaign snapshot cadence in executed ops
//                   (0 = only the final snapshot); requires --checkpoint-dir
//   --resume        continue from the newest valid snapshot in DIR; a
//                   resumed campaign is bit-identical to an uninterrupted one
//   --summary-json=PATH   write the deterministic per-job summary (digests,
//                   result counters, no wall-clock fields) to PATH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/log.h"
#include "src/core/replay.h"
#include "src/fleet/fleet_cli.h"
#include "src/faults/fault_registry.h"
#include "src/faults/injector.h"
#include "src/core/strategy_registry.h"
#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/telemetry/metrics.h"

namespace {

using namespace themis;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  themis_cli fuzz <hdfs|ceph|gluster|leo|geo> [--hours H] [--seed S]\n"
               "             [--seeds N] [--jobs N]\n"
               "             [--strategy themis|themis-|fixreq|fixconf|alternate|\n"
               "              concurrent|bandit] [--threshold T] [--historical]\n"
               "             [--healthy] [--transition-weight W] [--logs]\n"
               "             [--telemetry-out=PATH] [--metrics-summary]\n"
               "             [--checkpoint-dir=DIR] [--checkpoint-every-ops N]\n"
               "             [--resume] [--summary-json=PATH]\n"
               "          (--transition-weight blends balancer state-machine\n"
               "           coverage into seed energy; bandit schedules budget\n"
               "           across the registered strategies)\n"
               "  themis_cli replay <hdfs|ceph|gluster|leo|geo> <logfile> [--repeat N] [--bugs]\n"
               "          (--bugs re-injects the Table 2 faults: reproduction against\n"
               "           the buggy system, as in the paper's replay step)\n");
  return 2;
}

bool ParseFlavor(const char* text, Flavor* out) {
  if (std::strcmp(text, "hdfs") == 0) {
    *out = Flavor::kHdfs;
  } else if (std::strcmp(text, "ceph") == 0) {
    *out = Flavor::kCeph;
  } else if (std::strcmp(text, "gluster") == 0) {
    *out = Flavor::kGluster;
  } else if (std::strcmp(text, "leo") == 0) {
    *out = Flavor::kLeo;
  } else if (std::strcmp(text, "geo") == 0) {
    *out = Flavor::kGeo;
  } else {
    return false;
  }
  return true;
}

// Maps the CLI spellings to registry names; any name already known to the
// StrategyRegistry (e.g. one added by a plugin) passes through unchanged.
bool ParseStrategy(const char* text, std::string* out) {
  if (std::strcmp(text, "themis") == 0) {
    *out = "Themis";
  } else if (std::strcmp(text, "themis-") == 0) {
    *out = "Themis-";
  } else if (std::strcmp(text, "fixreq") == 0) {
    *out = "Fix_req";
  } else if (std::strcmp(text, "fixconf") == 0) {
    *out = "Fix_conf";
  } else if (std::strcmp(text, "alternate") == 0) {
    *out = "Alternate";
  } else if (std::strcmp(text, "concurrent") == 0) {
    *out = "Concurrent";
  } else if (std::strcmp(text, "bandit") == 0) {
    *out = "Bandit";
  } else if (StrategyRegistry::Instance().Contains(text)) {
    *out = text;
  } else {
    return false;
  }
  return true;
}

int RunFuzz(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  Flavor flavor;
  if (!ParseFlavor(argv[0], &flavor)) {
    return Usage();
  }
  CampaignMatrix matrix;
  matrix.flavors = {flavor};
  std::string strategy = "Themis";
  int jobs = 1;
  bool print_logs = false;
  bool metrics_summary = false;
  std::string telemetry_out;
  std::string checkpoint_dir;
  uint64_t checkpoint_every_ops = 0;
  bool resume = false;
  std::string summary_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      matrix.base.budget = Hours(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      matrix.matrix_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      matrix.seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      matrix.base.threshold_t = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--transition-weight") == 0 && i + 1 < argc) {
      matrix.base.transition_weight = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--transition-weight=", 20) == 0) {
      matrix.base.transition_weight = std::atof(argv[i] + 20);
    } else if (std::strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      if (!ParseStrategy(argv[++i], &strategy)) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--historical") == 0) {
      matrix.base.fault_set = FaultSet::kHistorical;
    } else if (std::strcmp(argv[i], "--healthy") == 0) {
      matrix.base.fault_set = FaultSet::kNone;
    } else if (std::strcmp(argv[i], "--logs") == 0) {
      print_logs = true;
    } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      telemetry_out = argv[i] + 16;
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-summary") == 0) {
      metrics_summary = true;
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      checkpoint_dir = argv[i] + 17;
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every-ops") == 0 && i + 1 < argc) {
      checkpoint_every_ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--checkpoint-every-ops=", 23) == 0) {
      checkpoint_every_ops = std::strtoull(argv[i] + 23, nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(argv[i], "--summary-json=", 15) == 0) {
      summary_json = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--summary-json") == 0 && i + 1 < argc) {
      summary_json = argv[++i];
    } else {
      return Usage();
    }
  }
  if (checkpoint_dir.empty() && (checkpoint_every_ops > 0 || resume)) {
    std::fprintf(stderr, "--checkpoint-every-ops/--resume require --checkpoint-dir\n");
    return 2;
  }
  matrix.strategies = {strategy};
  if (matrix.seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }

  SetLogLevel(LogLevel::kInfo);
  RunnerOptions options;
  options.jobs = jobs;
  options.telemetry_out = telemetry_out;
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every_ops = checkpoint_every_ops;
  options.resume = resume;
  options.summary_json = summary_json;
  MatrixResult result = CampaignRunner(options).Run(matrix);

  std::printf("\n=== %s on %s (%lld virtual hours, t=%.0f%%, %d campaign%s on "
              "%d thread%s, %.2fs wall) ===\n",
              strategy.c_str(), std::string(FlavorName(flavor)).c_str(),
              static_cast<long long>(matrix.base.budget / Hours(1)),
              matrix.base.threshold_t * 100.0, matrix.seeds,
              matrix.seeds == 1 ? "" : "s", result.threads,
              result.threads == 1 ? "" : "s", result.wall_seconds);

  bool any_ok = false;
  TextTable jobs_table({"Seed rep", "Test cases", "Ops", "Coverage", "Distinct",
                        "FPs", "Digest", "Wall (s)"});
  for (const JobResult& job : result.jobs) {
    if (!job.status.ok()) {
      std::fprintf(stderr, "campaign %d failed: %s\n", job.job.repetition,
                   job.status.ToString().c_str());
      continue;
    }
    any_ok = true;
    jobs_table.AddRow({std::to_string(job.job.repetition),
                       std::to_string(job.result.testcases),
                       std::to_string(job.result.total_ops),
                       std::to_string(job.result.final_coverage),
                       std::to_string(job.result.DistinctTruePositives()),
                       std::to_string(job.result.false_positives),
                       Sprintf("%016llx", static_cast<unsigned long long>(
                                              job.result.Digest())),
                       Sprintf("%.2f", job.wall_seconds)});
  }
  if (!any_ok) {
    return 1;
  }
  jobs_table.Print();

  const MatrixRollup& rollup = result.overall;
  std::printf("union: distinct failures %d | false positives %d | total ops %llu\n",
              rollup.DistinctTruePositives(), rollup.false_positives,
              static_cast<unsigned long long>(rollup.total_ops));
  if (!rollup.distinct_failures.empty()) {
    TextTable table({"Failure", "First confirmed (virtual min)"});
    for (const auto& [id, at] : rollup.distinct_failures) {
      table.AddRow({id, Sprintf("%.1f", ToMinutes(at))});
    }
    table.Print();
  }
  if (print_logs) {
    for (const JobResult& job : result.jobs) {
      if (!job.status.ok()) {
        continue;
      }
      for (const FailureReport& report : job.result.reports) {
        if (report.IsTruePositive()) {
          std::printf("\n# reproduction log for %s (%s imbalance, ratio %.2f)\n%s",
                      report.DedupKey().c_str(),
                      ImbalanceDimensionName(report.dimension), report.ratio,
                      FormatReproductionLog(report.testcase).c_str());
        }
      }
    }
  }
  if (metrics_summary) {
    std::printf("\n%s", MetricsRegistry::Global().RenderSummary().c_str());
  }
  return 0;
}

int RunReplay(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Flavor flavor;
  if (!ParseFlavor(argv[0], &flavor)) {
    return Usage();
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  int repetitions = 1;
  bool with_bugs = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repetitions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bugs") == 0) {
      with_bugs = true;
    } else {
      return Usage();
    }
  }
  Result<OpSeq> seq = ParseReproductionLog(buffer.str());
  if (!seq.ok()) {
    std::fprintf(stderr, "parse error: %s\n", seq.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/1);
  std::unique_ptr<FaultInjector> injector;
  if (with_bugs) {
    injector = std::make_unique<FaultInjector>(NewBugsFor(flavor), /*seed=*/1);
    dfs->set_fault_hooks(injector.get());
  }
  ReplayOutcome outcome = ReplayLog(*dfs, *seq, repetitions);
  if (injector != nullptr && !injector->ActiveFaultIds().empty()) {
    std::printf("faults triggered during replay:");
    for (const std::string& id : injector->ActiveFaultIds()) {
      std::printf(" %s", id.c_str());
    }
    std::printf("\n");
  }
  std::printf("replayed %d operations (%d ok, %d repetitions)\n", outcome.ops_executed,
              outcome.ops_ok, repetitions);
  std::printf("residual imbalance after rebalance: %.1f%%%s\n",
              100.0 * outcome.residual_imbalance,
              outcome.any_node_crashed ? " (a node crashed)" : "");
  std::printf(outcome.residual_imbalance > 0.25 || outcome.any_node_crashed
                  ? "=> imbalance failure REPRODUCED\n"
                  : "=> system returned to a balanced state\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "fuzz") == 0) {
    return RunFuzz(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "replay") == 0) {
    return RunReplay(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "fleet") == 0) {
    return FleetMain(argc - 2, argv + 2);
  }
  return Usage();
}
