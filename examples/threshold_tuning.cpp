// Detector threshold tuning (the §6.4 experiment, interactively sized):
// sweeps the variance threshold t and reports false/true positives so an
// operator can pick the optimum for their deployment.
//
//   ./build/examples/threshold_tuning [virtual_hours] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/harness/experiments.h"
#include "src/harness/report.h"

int main(int argc, char** argv) {
  using namespace themis;
  int hours = argc > 1 ? std::atoi(argv[1]) : 8;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1234;

  std::printf("Sweeping the imbalance detector threshold t "
              "(%d virtual hours per campaign)...\n\n", hours);

  ExperimentBudget budget;
  budget.campaign = Hours(hours);
  budget.seeds = 1;
  budget.base_seed = seed;
  std::vector<double> thresholds = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35};
  std::vector<ThresholdSweepRow> rows = RunThresholdSweep(thresholds, budget);

  TextTable table({"Threshold t", "False positives", "True positives (of 10 bugs)"});
  double best = 0.25;
  int best_score = -1000;
  for (const ThresholdSweepRow& row : rows) {
    table.AddRow({Sprintf("%.0f%%", row.threshold * 100.0),
                  std::to_string(row.false_positives),
                  std::to_string(row.true_positives)});
    int score = row.true_positives * 10 - row.false_positives;
    if (score > best_score) {
      best_score = score;
      best = row.threshold;
    }
  }
  table.Print();
  std::printf("\nRecommended threshold for this workload: t = %.0f%%\n", best * 100.0);
  std::printf("(The paper's optimum across the four DFSes is 25%%: all false "
              "positives gone, no true positives lost.)\n");
  return 0;
}
