// Adapting Themis to a new distributed file system (§5 "Adaption to New
// Distributed File Systems").
//
// The paper's claim: only the Interaction Adaptor needs work — an
// `operation.send()` path and a `LoadMonitor()` path. In this code base that
// means implementing the flavor extension points of DfsCluster (placement +
// rebalance plan); everything else (request handling, load accounting,
// rebalance APIs, sampling) is inherited. This example builds a deliberately
// naive "RoundRobinFS" — placement ignores load entirely — and lets Themis
// loose on it. Round-robin placement plus file deletions skews storage
// quickly, so Themis's detector should flag imbalances that the (correct)
// leveling rebalancer then fixes: candidates, but no confirmed failures.
//
//   ./build/examples/custom_dfs_adapter [virtual_minutes] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/dfs/cluster.h"
#include "src/monitor/states_monitor.h"

namespace {

using namespace themis;

// The complete adaptor: ~40 lines for a from-scratch DFS.
class RoundRobinFs : public DfsCluster {
 public:
  explicit RoundRobinFs(uint64_t seed) : DfsCluster(Config(seed), Flavor::kCustom,
                                                    "round-robin-fs") {
    BuildInitialTopology();
  }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override {
    (void)path;
    (void)chunk_index;
    // Strictly cyclic placement, blind to load — the simplest possible DFS.
    std::vector<BrickId> serving = ServingBricks();
    std::vector<BrickId> chosen;
    for (size_t probe = 0; probe < serving.size() && chosen.size() < 2; ++probe) {
      BrickId candidate = serving[(cursor_ + probe) % serving.size()];
      if (FindBrick(candidate)->FreeBytes() >= bytes) {
        chosen.push_back(candidate);
      }
    }
    ++cursor_;
    return chosen;
  }

  MigrationPlan BuildRebalancePlan() override {
    // Reuse the generic capacity-proportional leveler.
    return PlanLevelingByUsage(config_.native_threshold * 0.5);
  }

 private:
  static ClusterConfig Config(uint64_t seed) {
    ClusterConfig config;
    config.rng_seed = seed;
    config.native_threshold = 0.15;
    config.balancer_period = Minutes(3);
    return config;
  }

  size_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 240;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("Fuzzing RoundRobinFS (a user-written DFS) with Themis for %d virtual "
              "minutes...\n", minutes);

  RoundRobinFs dfs(seed);
  CoverageRecorder coverage(FlavorBranchSpace(Flavor::kCustom), seed);
  dfs.set_coverage(&coverage);

  Rng rng(seed * 31 + 1);
  InputModel model;
  StatesMonitor monitor(LoadVarianceWeights{});
  ImbalanceDetector detector(DetectorConfig{});
  // No fault injector: this system's only "bugs" are whatever its own
  // placement/rebalance logic genuinely does.
  TestCaseExecutor executor(dfs, model, monitor, detector, /*ground_truth=*/nullptr,
                            &coverage, rng);
  ThemisFuzzer fuzzer(model, rng);
  OpSeqGenerator init(model);
  executor.SeedInitialData(init, 50);

  int confirmed = 0;
  while (dfs.Now() < Minutes(minutes)) {
    OpSeq testcase = fuzzer.Next();
    ExecOutcome outcome = executor.Run(testcase);
    fuzzer.OnOutcome(testcase, outcome);
    confirmed += static_cast<int>(outcome.failures.size());
  }

  std::printf("\n=== results ===\n");
  std::printf("operations executed      : %llu\n",
              static_cast<unsigned long long>(executor.total_ops()));
  std::printf("imbalance candidates     : %d\n", executor.candidates_raised());
  std::printf("confirmed failures       : %d\n", confirmed);
  std::printf("branches covered         : %zu\n", coverage.TotalHits());
  std::printf("\nRound-robin placement drifts out of balance constantly (many "
              "candidates), but the leveling rebalancer recovers it, so the "
              "double-check filters the reports: candidates > 0, confirmed == 0 "
              "is the expected healthy outcome.\n");
  return confirmed == 0 ? 0 : 1;
}
