// Standalone front end for the fleet campaign service (DESIGN.md §17) —
// the same subcommands as `themis_cli fleet ...`, without the fuzz/replay
// surface:
//
//   themis_fleet run <hdfs|ceph|gluster|leo|geo> --dir=DIR [--workers N] ...
//   themis_fleet worker --dir=DIR --worker=K ...
//   themis_fleet status --dir=DIR

#include "src/fleet/fleet_cli.h"

int main(int argc, char** argv) {
  return themis::FleetMain(argc - 1, argv + 1);
}
