// Tests for the fault registries and the runtime injector.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/core/executor.h"
#include "src/core/generator.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/faults/injector.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

// ---- registries ----

TEST(FaultRegistry, PaperBugsPlusGeoExtensions) {
  // The paper's ten Table 2 bugs, plus the two GeoFS registry bugs
  // (DESIGN.md §15) — additive, so the four paper platforms keep exactly
  // their Table 2 counts.
  std::vector<FaultSpec> bugs = NewBugRegistry();
  ASSERT_EQ(bugs.size(), 12u);
  std::map<Flavor, int> per_platform;
  for (const FaultSpec& spec : bugs) {
    ++per_platform[spec.platform];
    EXPECT_FALSE(spec.environment_gated);
    EXPECT_FALSE(spec.historical);
    EXPECT_FALSE(spec.id.empty());
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_EQ(per_platform[Flavor::kGluster], 4);
  EXPECT_EQ(per_platform[Flavor::kLeo], 3);
  EXPECT_EQ(per_platform[Flavor::kCeph], 1);
  EXPECT_EQ(per_platform[Flavor::kHdfs], 2);
  EXPECT_EQ(per_platform[Flavor::kGeo], 2);
}

TEST(FaultRegistry, IdsAreUnique) {
  std::set<std::string> ids;
  for (const FaultSpec& spec : NewBugRegistry()) {
    EXPECT_TRUE(ids.insert(spec.id).second);
  }
}

TEST(FaultRegistry, FindNewBug) {
  EXPECT_NE(FindNewBug("Bug#S24387"), nullptr);
  EXPECT_EQ(FindNewBug("Bug#S24387")->platform, Flavor::kGluster);
  EXPECT_EQ(FindNewBug("no-such-bug"), nullptr);
}

TEST(FaultRegistry, MostBugsNeedBothInputSpaces) {
  // Finding 4: the majority of failures need requests + configuration.
  int both = 0;
  for (const FaultSpec& spec : NewBugRegistry()) {
    if (spec.trigger.needs_requests &&
        (spec.trigger.needs_node_ops || spec.trigger.needs_volume_ops)) {
      ++both;
    }
  }
  EXPECT_GE(both, 7);
}

TEST(FaultRegistry, NewBugsForFiltersByPlatform) {
  for (const FaultSpec& spec : NewBugsFor(Flavor::kLeo)) {
    EXPECT_EQ(spec.platform, Flavor::kLeo);
  }
  EXPECT_EQ(NewBugsFor(Flavor::kLeo).size(), 3u);
}

TEST(HistoricalCorpus, FiftyThreeFaults) {
  std::vector<FaultSpec> corpus = HistoricalFaultCorpus();
  ASSERT_EQ(corpus.size(), 53u);
  int gated = 0;
  std::map<Flavor, int> per_platform;
  for (const FaultSpec& spec : corpus) {
    EXPECT_TRUE(spec.historical);
    gated += spec.environment_gated ? 1 : 0;
    ++per_platform[spec.platform];
    // Finding 3: disparity of at least 30%.
    if (spec.effect != EffectKind::kCrashNode) {
      EXPECT_GE(spec.severity, 0.30);
    }
  }
  EXPECT_EQ(gated, 5);
  EXPECT_EQ(per_platform[Flavor::kHdfs], 18);
  EXPECT_EQ(per_platform[Flavor::kCeph], 16);
  EXPECT_EQ(per_platform[Flavor::kGluster], 12);
  EXPECT_EQ(per_platform[Flavor::kLeo], 7);
}

TEST(HistoricalCorpus, ConversionIsDeterministic) {
  const StudyRecord& record = StudyCorpus().front();
  FaultSpec a = FaultFromStudyRecord(record);
  FaultSpec b = FaultFromStudyRecord(record);
  EXPECT_EQ(a.severity, b.severity);
  EXPECT_EQ(a.trigger.required_kinds, b.trigger.required_kinds);
  EXPECT_EQ(a.effect, b.effect);
}

TEST(HistoricalCorpus, TriggerInputsRespectStudyAnnotations) {
  for (const StudyRecord& record : StudyCorpus()) {
    FaultSpec spec = FaultFromStudyRecord(record);
    switch (record.inputs) {
      case TriggerInputs::kRequestsOnly:
        EXPECT_TRUE(spec.trigger.needs_requests);
        EXPECT_FALSE(spec.trigger.needs_node_ops || spec.trigger.needs_volume_ops);
        break;
      case TriggerInputs::kConfigsOnly:
        EXPECT_FALSE(spec.trigger.needs_requests);
        EXPECT_TRUE(spec.trigger.needs_node_ops || spec.trigger.needs_volume_ops);
        break;
      case TriggerInputs::kBoth:
        EXPECT_TRUE(spec.trigger.needs_requests);
        EXPECT_TRUE(spec.trigger.needs_node_ops || spec.trigger.needs_volume_ops);
        break;
    }
  }
}

TEST(HistoricalCorpus, DeepFailuresHaveAccumulationRequirements) {
  for (const StudyRecord& record : StudyCorpus()) {
    FaultSpec spec = FaultFromStudyRecord(record);
    if (record.steps >= 6) {
      EXPECT_GE(spec.trigger.min_rebalance_rounds, 2) << record.id;
      EXPECT_GT(spec.trigger.min_variance, 0.0) << record.id;
      EXPECT_TRUE(spec.trigger.needs_accumulation) << record.id;
    }
  }
}

// ---- injector runtime ----

// A spec that fires as soon as any create lands (probability 1).
FaultSpec InstantSpec(Flavor flavor, EffectKind effect, double severity = 0.5) {
  FaultSpec spec;
  spec.id = "test-fault";
  spec.platform = flavor;
  spec.effect = effect;
  spec.severity = severity;
  spec.trigger.window = 8;
  spec.trigger.min_window_ops = 1;
  spec.trigger.probability = 1.0;
  return spec;
}

Operation Create(const std::string& path, uint64_t size) {
  Operation op;
  op.kind = OpKind::kCreate;
  op.path = path;
  op.size = size;
  return op;
}

TEST(Injector, TriggersAndRecordsGroundTruth) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 21);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew)}, 1);
  dfs->set_fault_hooks(&injector);
  EXPECT_FALSE(injector.AnyActive());
  ASSERT_TRUE(dfs->Execute(Create("/f", kGiB)).status.ok());
  EXPECT_TRUE(injector.AnyActive());
  ASSERT_EQ(injector.ActiveFaultIds().size(), 1u);
  EXPECT_EQ(injector.ActiveFaultIds().front(), "test-fault");
  EXPECT_EQ(injector.EverTriggeredIds().size(), 1u);
}

TEST(Injector, PlatformMismatchNeverTriggers) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 22);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew)}, 1);
  dfs->set_fault_hooks(&injector);
  for (int i = 0; i < 20; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kGiB));
  }
  EXPECT_FALSE(injector.AnyActive());
}

TEST(Injector, EnvironmentGatedNeverTriggers) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 23);
  FaultSpec spec = InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew);
  spec.environment_gated = true;
  FaultInjector injector({spec}, 1);
  dfs->set_fault_hooks(&injector);
  for (int i = 0; i < 20; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kGiB));
  }
  EXPECT_FALSE(injector.AnyActive());
}

TEST(Injector, RequiredKindsGateTriggering) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 24);
  FaultSpec spec = InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew);
  spec.trigger.required_kinds = {OpKind::kRename};
  FaultInjector injector({spec}, 1);
  dfs->set_fault_hooks(&injector);
  ASSERT_TRUE(dfs->Execute(Create("/f", kGiB)).status.ok());
  EXPECT_FALSE(injector.AnyActive());
  Operation rename;
  rename.kind = OpKind::kRename;
  rename.path = "/f";
  rename.path2 = "/g";
  ASSERT_TRUE(dfs->Execute(rename).status.ok());
  EXPECT_TRUE(injector.AnyActive());
}

TEST(Injector, ClassRequirementsGateTriggering) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 25);
  FaultSpec spec = InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew);
  spec.trigger.needs_node_ops = true;
  FaultInjector injector({spec}, 1);
  dfs->set_fault_hooks(&injector);
  for (int i = 0; i < 5; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kGiB));
  }
  EXPECT_FALSE(injector.AnyActive());
  Operation add;
  add.kind = OpKind::kAddStorageNode;
  ASSERT_TRUE(dfs->Execute(add).status.ok());
  EXPECT_TRUE(injector.AnyActive());
}

TEST(Injector, CpuSkewEffectLoadsVictim) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 26);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew, 0.6)}, 1);
  dfs->set_fault_hooks(&injector);
  for (int i = 0; i < 30; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kMiB));
  }
  double max_cpu = 0;
  double total_cpu = 0;
  int nodes = 0;
  for (const LoadSample& sample : dfs->SampleLoad()) {
    if (sample.is_storage) {
      max_cpu = std::max(max_cpu, sample.cpu_seconds);
      total_cpu += sample.cpu_seconds;
      ++nodes;
    }
  }
  EXPECT_GT(max_cpu, (total_cpu / nodes) * 2.0) << "victim must dominate CPU usage";
}

TEST(Injector, CrashEffectKillsNode) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 27);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kCrashNode)}, 1);
  dfs->set_fault_hooks(&injector);
  (void)dfs->Execute(Create("/f", kGiB));
  bool any_crashed = false;
  for (const LoadSample& sample : dfs->SampleLoad()) {
    any_crashed |= sample.crashed;
  }
  EXPECT_TRUE(any_crashed);
}

TEST(Injector, StorageEffectAccumulatesTowardSeverity) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 28);
  FaultInjector injector(
      {InstantSpec(Flavor::kGluster, EffectKind::kHotspotAccumulation, 0.30)}, 1);
  dfs->set_fault_hooks(&injector);
  ASSERT_TRUE(dfs->Execute(Create("/seed", 100 * kGiB)).status.ok());
  double max_spread = 0;
  for (int i = 0; i < 300; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kGiB));
    max_spread = std::max(max_spread, dfs->StorageImbalance());
  }
  EXPECT_GE(max_spread, 0.25) << "hotspot accumulation must approach severity";
}

TEST(Injector, HotspotSurvivesExplicitRebalance) {
  // The defining property of an imbalance failure (§2.2): the system cannot
  // recover to LBS on its own.
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 29);
  FaultInjector injector(
      {InstantSpec(Flavor::kGluster, EffectKind::kPlanSkipsVictim, 0.35)}, 1);
  dfs->set_fault_hooks(&injector);
  ASSERT_TRUE(dfs->Execute(Create("/seed", 200 * kGiB)).status.ok());
  for (int i = 0; i < 250; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), 2 * kGiB));
  }
  ASSERT_GE(dfs->StorageImbalance(), 0.28);
  (void)dfs->TriggerRebalance();
  for (int i = 0; i < 2000 && !dfs->RebalanceDone(); ++i) {
    dfs->AdvanceTime(Seconds(10));
  }
  // Re-apply load (the injector keeps steering) and check persistence.
  for (int i = 0; i < 20; ++i) {
    (void)dfs->Execute(Create("/g" + std::to_string(i), kGiB));
  }
  EXPECT_GE(dfs->StorageImbalance(), 0.22)
      << "an active plan-skipping fault must defeat the balancer";
}

TEST(Injector, RebalanceHangSuppressesCommand) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 30);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kRebalanceHang)},
                         1);
  dfs->set_fault_hooks(&injector);
  (void)dfs->Execute(Create("/f", kGiB));
  ASSERT_TRUE(injector.AnyActive());
  uint64_t rounds_before = static_cast<uint64_t>(dfs->completed_rebalance_rounds());
  (void)dfs->TriggerRebalance();
  dfs->AdvanceTime(Minutes(5));
  EXPECT_EQ(static_cast<uint64_t>(dfs->completed_rebalance_rounds()), rounds_before)
      << "a hang fault must swallow the rebalance command";
}

TEST(Injector, ResetDeactivatesFaults) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 31);
  FaultInjector injector({InstantSpec(Flavor::kGluster, EffectKind::kCpuSkew)}, 1);
  dfs->set_fault_hooks(&injector);
  (void)dfs->Execute(Create("/f", kGiB));
  ASSERT_TRUE(injector.AnyActive());
  dfs->ResetToInitial();
  EXPECT_FALSE(injector.AnyActive());
  // Still counted as triggered-once for campaign statistics.
  EXPECT_EQ(injector.EverTriggeredIds().size(), 1u);
}

TEST(Injector, NetworkSkewTargetsMetaNode) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kLeo, 32);
  FaultInjector injector({InstantSpec(Flavor::kLeo, EffectKind::kNetworkSkew, 0.7)}, 1);
  dfs->set_fault_hooks(&injector);
  for (int i = 0; i < 40; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kMiB));
  }
  uint64_t max_requests = 0;
  uint64_t min_requests = UINT64_MAX;
  for (const LoadSample& sample : dfs->SampleLoad()) {
    if (!sample.is_storage) {
      max_requests = std::max(max_requests, sample.requests);
      min_requests = std::min(min_requests, sample.requests);
    }
  }
  EXPECT_GT(max_requests, 2 * min_requests);
}

}  // namespace
}  // namespace themis
