// Unit tests for the Themis core: operation grammar, input model, generator,
// mutator, seed pool, op sequences.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/mutator.h"
#include "src/core/opseq.h"
#include "src/core/seed_pool.h"
#include "src/dfs/flavors/factory.h"

namespace themis {
namespace {

// ---- operation grammar ----

TEST(Operation, SeventeenOperators) {
  // The paper's specification has t = 17 distinct load-related operators.
  std::set<OpKind> kinds;
  for (int i = 0; i < kOpKindCount; ++i) {
    kinds.insert(OpKindFromIndex(i));
  }
  EXPECT_EQ(kinds.size(), 17u);
}

TEST(Operation, ClassPartition) {
  int file_ops = 0;
  int node_ops = 0;
  int volume_ops = 0;
  int env_ops = 0;
  for (int i = 0; i < kTotalOpKindCount; ++i) {
    switch (ClassOf(OpKindFromTotalIndex(i))) {
      case OpClass::kFile:
        ++file_ops;
        break;
      case OpClass::kNode:
        ++node_ops;
        break;
      case OpClass::kVolume:
        ++volume_ops;
        break;
      case OpClass::kEnvFault:
        ++env_ops;
        break;
    }
  }
  EXPECT_EQ(file_ops, 9);
  EXPECT_EQ(node_ops, 4);
  EXPECT_EQ(volume_ops, 4);
  EXPECT_EQ(env_ops, kEnvFaultKindCount);
}

TEST(Operation, ConfigClassification) {
  EXPECT_FALSE(IsConfigOp(OpKind::kCreate));
  EXPECT_TRUE(IsConfigOp(OpKind::kAddStorageNode));
  EXPECT_TRUE(IsConfigOp(OpKind::kExpandVolume));
}

TEST(Operation, NamesAreUnique) {
  std::set<std::string_view> names;
  for (int i = 0; i < kOpKindCount; ++i) {
    names.insert(OpKindName(OpKindFromIndex(i)));
  }
  EXPECT_EQ(names.size(), 17u);
}

TEST(Operation, ToStringIncludesOperands) {
  Operation op;
  op.kind = OpKind::kCreate;
  op.path = "/f";
  op.size = kGiB;
  std::string text = op.ToString();
  EXPECT_NE(text.find("create"), std::string::npos);
  EXPECT_NE(text.find("/f"), std::string::npos);
  EXPECT_NE(text.find("GiB"), std::string::npos);
}

TEST(OpSeq, ClassQueries) {
  OpSeq seq;
  EXPECT_FALSE(seq.HasRequestOps());
  EXPECT_FALSE(seq.HasConfigOps());
  Operation file;
  file.kind = OpKind::kOpen;
  seq.ops.push_back(file);
  EXPECT_TRUE(seq.HasRequestOps());
  EXPECT_FALSE(seq.HasConfigOps());
  Operation node;
  node.kind = OpKind::kAddStorageNode;
  seq.ops.push_back(node);
  EXPECT_TRUE(seq.HasConfigOps());
}

// ---- input model ----

class InputModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs_ = MakeCluster(Flavor::kGluster, 5);
    model_.SyncFromDfs(*dfs_);
  }
  std::unique_ptr<DfsCluster> dfs_;
  InputModel model_;
  Rng rng_{77};
};

TEST_F(InputModelTest, SyncPullsAdminViews) {
  EXPECT_EQ(model_.free_space(), dfs_->FreeSpaceBytes());
  EXPECT_NE(model_.RandomMetaNode(rng_), kInvalidNode);
  EXPECT_NE(model_.RandomStorageNode(rng_), kInvalidNode);
  EXPECT_NE(model_.RandomBrick(rng_), kInvalidBrick);
}

TEST_F(InputModelTest, ObserveTracksFiles) {
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/a";
  OpResult ok;
  model_.Observe(create, ok);
  EXPECT_TRUE(model_.HasFile("/a"));
  EXPECT_EQ(model_.file_count(), 1u);

  Operation del;
  del.kind = OpKind::kDelete;
  del.path = "/a";
  model_.Observe(del, ok);
  EXPECT_FALSE(model_.HasFile("/a"));
}

TEST_F(InputModelTest, ObserveTracksRenames) {
  OpResult ok;
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/a";
  model_.Observe(create, ok);
  Operation rename;
  rename.kind = OpKind::kRename;
  rename.path = "/a";
  rename.path2 = "/b";
  model_.Observe(rename, ok);
  EXPECT_FALSE(model_.HasFile("/a"));
  EXPECT_TRUE(model_.HasFile("/b"));
}

TEST_F(InputModelTest, FailedCreateNotRecorded) {
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/a";
  OpResult failed;
  failed.status = Status::OutOfSpace("full");
  model_.Observe(create, failed);
  EXPECT_FALSE(model_.HasFile("/a"));
}

TEST_F(InputModelTest, StaleReferencePrunedOnNotFound) {
  OpResult ok;
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/a";
  model_.Observe(create, ok);
  Operation append;
  append.kind = OpKind::kAppend;
  append.path = "/a";
  OpResult missing;
  missing.status = Status::NotFound("/a");
  model_.Observe(append, missing);
  EXPECT_FALSE(model_.HasFile("/a"));
}

TEST_F(InputModelTest, NewNamesAreUnique) {
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(names.insert(model_.NewFileName(rng_)).second);
  }
}

TEST_F(InputModelTest, DirsTracked) {
  OpResult ok;
  Operation mkdir;
  mkdir.kind = OpKind::kMkdir;
  mkdir.path = "/d";
  model_.Observe(mkdir, ok);
  EXPECT_TRUE(model_.HasDir("/d"));
  Operation rmdir;
  rmdir.kind = OpKind::kRmdir;
  rmdir.path = "/d";
  model_.Observe(rmdir, ok);
  EXPECT_FALSE(model_.HasDir("/d"));
  EXPECT_TRUE(model_.HasDir("/"));  // root survives
}

TEST_F(InputModelTest, SizesWithinBounds) {
  for (int i = 0; i < 2000; ++i) {
    uint64_t size = model_.GenerateSize(rng_);
    EXPECT_LE(size, model_.free_space());
  }
}

TEST_F(InputModelTest, SizesIncludeBoundaries) {
  bool saw_zero = false;
  bool saw_large = false;
  for (int i = 0; i < 3000; ++i) {
    uint64_t size = model_.GenerateSize(rng_);
    saw_zero |= size == 0;
    saw_large |= size >= model_.free_space() / 2;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_large);
}

TEST_F(InputModelTest, ResetClears) {
  OpResult ok;
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/a";
  model_.Observe(create, ok);
  model_.Reset();
  EXPECT_EQ(model_.file_count(), 0u);
  EXPECT_EQ(model_.RandomStorageNode(rng_), kInvalidNode);
}

// ---- generator ----

TEST(Generator, LengthWithinMax) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 6);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model, 8);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    OpSeq seq = generator.Generate(rng);
    EXPECT_GE(seq.size(), 1u);
    EXPECT_LE(seq.size(), 8u);
  }
  EXPECT_EQ(generator.Generate(rng, 3).size(), 3u);
}

TEST(Generator, AllOperatorsReachable) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 6);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  Rng rng(6);
  std::set<OpKind> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(generator.GenerateOp(rng).kind);
  }
  EXPECT_EQ(seen.size(), 17u) << "uniform 1/t operator choice must reach all 17";
}

TEST(Generator, ClassConstrainedGeneration) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 6);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ClassOf(generator.GenerateOpOfClass(OpClass::kFile, rng).kind),
              OpClass::kFile);
    EXPECT_EQ(ClassOf(generator.GenerateOpOfClass(OpClass::kNode, rng).kind),
              OpClass::kNode);
    EXPECT_EQ(ClassOf(generator.GenerateOpOfClass(OpClass::kVolume, rng).kind),
              OpClass::kVolume);
  }
}

TEST(Generator, OperandsInstantiatedPerKind) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 6);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  Rng rng(8);
  Operation create = generator.GenerateOpOfKind(OpKind::kCreate, rng);
  EXPECT_FALSE(create.path.empty());
  Operation rename = generator.GenerateOpOfKind(OpKind::kRename, rng);
  EXPECT_FALSE(rename.path2.empty());
  Operation remove_node = generator.GenerateOpOfKind(OpKind::kRemoveStorageNode, rng);
  EXPECT_NE(remove_node.node, kInvalidNode);
  Operation expand = generator.GenerateOpOfKind(OpKind::kExpandVolume, rng);
  EXPECT_NE(expand.brick, kInvalidBrick);
  EXPECT_GT(expand.size, 0u);
}

// ---- mutator ----

class MutatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs_ = MakeCluster(Flavor::kGluster, 9);
    model_.SyncFromDfs(*dfs_);
    generator_ = std::make_unique<OpSeqGenerator>(model_, 8);
    mutator_ = std::make_unique<OpSeqMutator>(model_, *generator_, 8);
  }
  std::unique_ptr<DfsCluster> dfs_;
  InputModel model_;
  std::unique_ptr<OpSeqGenerator> generator_;
  std::unique_ptr<OpSeqMutator> mutator_;
  Rng rng_{10};
};

TEST_F(MutatorTest, StaysWithinLengthBounds) {
  OpSeq seed = generator_->Generate(rng_, 8);
  for (int i = 0; i < 500; ++i) {
    OpSeq child = mutator_->Mutate(seed, rng_);
    EXPECT_GE(child.size(), 1u);
    EXPECT_LE(child.size(), 8u);
    seed = child;
  }
}

TEST_F(MutatorTest, EmptySeedRegenerates) {
  OpSeq child = mutator_->Mutate(OpSeq{}, rng_);
  EXPECT_GE(child.size(), 1u);
}

TEST_F(MutatorTest, LightMutationChangesLittle) {
  OpSeq seed = generator_->Generate(rng_, 8);
  int identical_ops = 0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    OpSeq child = mutator_->MutateLight(seed, rng_);
    // A light mutation touches exactly one position (insert/delete/replace),
    // so at least size-1 positions survive when lengths match.
    if (child.size() == seed.size()) {
      int same = 0;
      for (size_t j = 0; j < child.size(); ++j) {
        if (child.ops[j].kind == seed.ops[j].kind) {
          ++same;
        }
      }
      EXPECT_GE(same, static_cast<int>(seed.size()) - 1);
      identical_ops += same;
    }
  }
  EXPECT_GT(identical_ops, 0);
}

TEST_F(MutatorTest, RepairRebindsStaleFileReferences) {
  OpResult ok;
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/live";
  model_.Observe(create, ok);

  OpSeq seq;
  Operation append;
  append.kind = OpKind::kAppend;
  append.path = "/ghost";  // not in the model
  seq.ops.push_back(append);
  int rebound = 0;
  for (int i = 0; i < 100; ++i) {
    OpSeq copy = seq;
    mutator_->Repair(copy, rng_);
    if (copy.ops[0].path != "/ghost") {
      ++rebound;
      EXPECT_EQ(copy.ops[0].path, "/live");
    }
  }
  EXPECT_GT(rebound, 70);  // rebinds with probability 0.9
}

TEST_F(MutatorTest, RepairKeepsLiveReferences) {
  OpResult ok;
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/live";
  model_.Observe(create, ok);
  OpSeq seq;
  Operation append;
  append.kind = OpKind::kAppend;
  append.path = "/live";
  seq.ops.push_back(append);
  for (int i = 0; i < 50; ++i) {
    mutator_->Repair(seq, rng_);
    EXPECT_EQ(seq.ops[0].path, "/live") << "live operands must stay targeted";
  }
}

TEST_F(MutatorTest, RepairRebindsStaleNodeAndBrick) {
  OpSeq seq;
  Operation remove;
  remove.kind = OpKind::kRemoveStorageNode;
  remove.node = 9999;
  seq.ops.push_back(remove);
  Operation expand;
  expand.kind = OpKind::kExpandVolume;
  expand.brick = 9999;
  seq.ops.push_back(expand);
  mutator_->Repair(seq, rng_);
  EXPECT_NE(seq.ops[0].node, 9999u);
  EXPECT_NE(seq.ops[1].brick, 9999u);
}

// ---- seed pool ----

TEST(SeedPool, SelectFromEmptyReturnsEmptySeq) {
  SeedPool pool;
  Rng rng(1);
  EXPECT_TRUE(pool.Select(rng).empty());
}

TEST(SeedPool, PrefersHighScores) {
  SeedPool pool(16);
  Rng rng(2);
  OpSeq low;
  low.ops.resize(1);
  low.ops[0].kind = OpKind::kOpen;
  OpSeq high;
  high.ops.resize(2);
  high.ops[0].kind = OpKind::kCreate;
  high.ops[1].kind = OpKind::kAppend;
  pool.Add(low, 0.01);
  pool.Add(high, 2.0);
  int high_picks = 0;
  for (int i = 0; i < 500; ++i) {
    if (pool.Select(rng).size() == 2) {
      ++high_picks;
    }
  }
  EXPECT_GT(high_picks, 300);
}

TEST(SeedPool, EvictsLowestWhenFull) {
  SeedPool pool(4);
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    OpSeq seq;
    seq.ops.resize(1);
    pool.Add(seq, 1.0 + i);
  }
  EXPECT_EQ(pool.size(), 4u);
  OpSeq better;
  better.ops.resize(2);
  pool.Add(better, 10.0);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_DOUBLE_EQ(pool.best_score(), 10.0);
  // A worse-than-everything seed is rejected outright.
  OpSeq worse;
  worse.ops.resize(3);
  pool.Add(worse, 0.5);
  EXPECT_EQ(pool.size(), 4u);
  bool found_worse = false;
  for (int i = 0; i < 200; ++i) {
    if (pool.Select(rng).size() == 3) {
      found_worse = true;
    }
  }
  EXPECT_FALSE(found_worse);
}

}  // namespace
}  // namespace themis
