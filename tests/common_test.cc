// Unit tests for the common substrate: strings, RNG, stats, status, clock,
// byte formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace themis {
namespace {

// ---- strings ----

TEST(Strings, SprintfFormats) {
  EXPECT_EQ(Sprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Sprintf("%.2f", 1.5), "1.50");
  EXPECT_EQ(Sprintf("empty"), "empty");
}

TEST(Strings, SplitKeepsEmptyTokens) {
  auto parts = Split("a//b", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("/a/b", "/a"));
  EXPECT_FALSE(StartsWith("/a", "/a/b"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(Strings, NormalizePathCollapsesSlashes) {
  EXPECT_EQ(NormalizePath("a/b"), "/a/b");
  EXPECT_EQ(NormalizePath("//a///b/"), "/a/b");
  EXPECT_EQ(NormalizePath(""), "/");
  EXPECT_EQ(NormalizePath("/"), "/");
}

TEST(Strings, ParentPath) {
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
}

TEST(Strings, Basename) {
  EXPECT_EQ(Basename("/a/b"), "b");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
}

// ---- rng ----

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value is reachable
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
  EXPECT_FALSE(rng.Chance(-1.0));
  EXPECT_TRUE(rng.Chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, PickWeightedFollowsWeights) {
  Rng rng(17);
  std::map<size_t, int> counts;
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.PickWeighted({1.0, 3.0, 0.0})];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.4);
}

TEST(Rng, PickWeightedAllZeroFallsBackToUniform) {
  Rng rng(19);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.PickWeighted({0.0, 0.0, 0.0}));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, HashCombineAndMixAreStable) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(5);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

// ---- stats ----

TEST(Stats, RunningStatBasics) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.variance(), 0.0);
  stat.Add(2.0);
  stat.Add(4.0);
  stat.Add(6.0);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
  EXPECT_NEAR(stat.variance(), 8.0 / 3.0, 1e-9);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 6.0);
  stat.Reset();
  EXPECT_EQ(stat.count(), 0u);
}

TEST(Stats, MaxOverMean) {
  EXPECT_DOUBLE_EQ(MaxOverMean({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxOverMean({2.0, 4.0}), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(MaxOverMean({}), 0.0);
  EXPECT_DOUBLE_EQ(MaxOverMean({0.0, 0.0}), 0.0);
}

TEST(Stats, MaxSpreadAndMean) {
  EXPECT_DOUBLE_EQ(MaxSpread({1.0, 5.0, 3.0}), 4.0);
  EXPECT_DOUBLE_EQ(MaxSpread({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

// ---- status ----

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = Status::NotFound("foo");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: foo");
}

TEST(Status, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad(Status::Internal("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

// ---- clock & bytes ----

TEST(Clock, AdvanceAndReset) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(Seconds(2));
  clock.Advance(Millis(500));
  EXPECT_EQ(clock.now(), 2500000);
  clock.Advance(-100);  // negative deltas are ignored
  EXPECT_EQ(clock.now(), 2500000);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(Clock, UnitConversions) {
  EXPECT_EQ(Minutes(2), Seconds(120));
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_DOUBLE_EQ(ToMinutes(Minutes(90)), 90.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
}

TEST(Bytes, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GiB");
  EXPECT_EQ(FormatBytes(2 * kTiB), "2.00 TiB");
}

TEST(Bytes, SafeRatio) {
  EXPECT_DOUBLE_EQ(SafeRatio(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(SafeRatio(1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace themis
