// Corruption handling (DESIGN.md §11): every way a snapshot file can rot —
// truncation, bit flips, a wrong magic, an unsupported format version, a
// mismatched payload size — must be rejected with a descriptive kDataLoss
// Status, never a crash or a silently wrong restore. A resuming campaign
// skips corrupt candidates and falls back to the newest valid snapshot, and
// a snapshot taken under a different configuration is refused with a
// field-level identity error.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/core/bandit.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/strategy_registry.h"
#include "src/coverage/model_coverage.h"
#include "src/dfs/flavors/factory.h"
#include "src/dfs/flavors/geo_like.h"
#include "src/faults/env_fault.h"
#include "src/harness/campaign.h"
#include "src/harness/snapshot.h"
#include "src/monitor/load_model.h"

namespace themis {
namespace {

std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("snap_corrupt_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string MakeValidSnapshot(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name;
  std::string payload = "campaign state bytes, definitely load-bearing";
  EXPECT_TRUE(WriteSnapshotFile(path, SnapshotKind::kMidCampaign, payload).ok());
  return path;
}

TEST(SnapshotCorruptionTest, TruncationIsRejectedDescriptively) {
  const std::string dir = FreshDir("truncate");
  const std::string path = MakeValidSnapshot(dir, "job-0-1.ckpt");
  std::string bytes = ReadFileBytes(path);
  // Truncate at every interesting boundary: inside the header, exactly at
  // the header end, and inside the payload.
  for (size_t keep : {size_t{0}, size_t{7}, size_t{20}, size_t{29},
                      bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    Result<LoadedSnapshot> loaded = ReadSnapshotFile(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << keep;
    EXPECT_NE(loaded.status().message().find(path), std::string::npos)
        << "message should name the file: " << loaded.status().ToString();
  }
}

TEST(SnapshotCorruptionTest, EveryPayloadBitFlipIsCaughtByTheChecksum) {
  const std::string dir = FreshDir("bitflip");
  const std::string path = MakeValidSnapshot(dir, "job-0-1.ckpt");
  const std::string original = ReadFileBytes(path);
  constexpr size_t kHeaderBytes = 29;
  for (size_t byte = kHeaderBytes; byte < original.size(); ++byte) {
    std::string corrupt = original;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    WriteFileBytes(path, corrupt);
    Result<LoadedSnapshot> loaded = ReadSnapshotFile(path);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << byte;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  }
}

TEST(SnapshotCorruptionTest, WrongMagicAndVersionAreRejected) {
  const std::string dir = FreshDir("header");
  const std::string path = MakeValidSnapshot(dir, "job-0-1.ckpt");
  const std::string original = ReadFileBytes(path);

  std::string wrong_magic = original;
  wrong_magic[0] = 'X';
  WriteFileBytes(path, wrong_magic);
  Result<LoadedSnapshot> loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);

  std::string wrong_version = original;
  wrong_version[8] = 99;  // version u32 LE starts at offset 8
  WriteFileBytes(path, wrong_version);
  loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);

  // A pre-v6 file (no model-coverage record, no bandit arm tables) must be
  // refused outright rather than parsed into misaligned fields.
  std::string stale_version = original;
  stale_version[8] = 5;
  WriteFileBytes(path, stale_version);
  loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);

  std::string wrong_size = original;
  wrong_size[13] = static_cast<char>(wrong_size[13] + 1);  // payload_size
  WriteFileBytes(path, wrong_size);
  loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("size"), std::string::npos);
}

// A resuming campaign must skip a corrupt newest snapshot and continue from
// the newest VALID one, still reaching the uninterrupted digest.
TEST(SnapshotCorruptionTest, ResumeFallsBackToNewestValidSnapshot) {
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = 31415;
  config.budget = Hours(2);
  Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
  ASSERT_TRUE(uninterrupted.ok());

  const std::string dir = FreshDir("fallback");
  CampaignConfig crash = config;
  crash.checkpoint_dir = dir;
  crash.checkpoint_every_ops = 300;
  crash.checkpoint_keep = 10;  // retain every mid snapshot for this test
  crash.halt_after_checkpoints = 3;
  ASSERT_FALSE(Campaign(crash).Run("Themis").ok());

  // Corrupt the newest snapshot (ordinal 3) with a payload bit flip.
  const std::string newest = dir + "/job-0-3.ckpt";
  std::string bytes = ReadFileBytes(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x01);
  WriteFileBytes(newest, bytes);

  CampaignConfig finish = config;
  finish.checkpoint_dir = dir;
  finish.checkpoint_every_ops = 300;
  finish.checkpoint_keep = 10;
  finish.resume = true;
  Result<CampaignResult> resumed = Campaign(finish).Run("Themis");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->Digest(), uninterrupted->Digest());
}

// With every snapshot corrupt, resume degrades to a fresh run — correct,
// just slower — and still produces the uninterrupted digest.
TEST(SnapshotCorruptionTest, AllSnapshotsCorruptMeansFreshRun) {
  CampaignConfig config;
  config.flavor = Flavor::kHdfs;
  config.seed = 27182;
  config.budget = Hours(1);
  Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
  ASSERT_TRUE(uninterrupted.ok());

  const std::string dir = FreshDir("all_corrupt");
  CampaignConfig crash = config;
  crash.checkpoint_dir = dir;
  crash.checkpoint_every_ops = 300;
  crash.halt_after_checkpoints = 2;
  ASSERT_FALSE(Campaign(crash).Run("Themis").ok());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string bytes = ReadFileBytes(entry.path().string());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
    WriteFileBytes(entry.path().string(), bytes);
  }

  CampaignConfig finish = config;
  finish.checkpoint_dir = dir;
  finish.checkpoint_every_ops = 300;
  finish.resume = true;
  Result<CampaignResult> resumed = Campaign(finish).Run("Themis");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->Digest(), uninterrupted->Digest());
}

// A snapshot from a different configuration is refused with a message that
// names the mismatched field — resuming under the wrong config silently
// diverging would be the worst possible failure mode.
TEST(SnapshotCorruptionTest, IdentityMismatchNamesTheField) {
  CampaignConfig config;
  config.flavor = Flavor::kCeph;
  config.seed = 161803;
  config.budget = Hours(1);

  SnapshotWriter writer;
  WriteSnapshotIdentity(writer, "Themis", config);
  const std::string payload = writer.buffer();

  struct Case {
    const char* field;
    CampaignConfig changed;
    std::string strategy = "Themis";
  };
  std::vector<Case> cases;
  cases.push_back({"strategy", config, "Fix_req"});
  Case seed_case{"seed", config};
  seed_case.changed.seed = 1;
  cases.push_back(seed_case);
  Case budget_case{"budget", config};
  budget_case.changed.budget = Hours(2);
  cases.push_back(budget_case);
  Case threshold_case{"threshold_t", config};
  threshold_case.changed.threshold_t = 0.5;
  cases.push_back(threshold_case);
  Case nodes_case{"storage_nodes", config};
  nodes_case.changed.storage_nodes = 12;
  cases.push_back(nodes_case);
  // v4: an env-faulted campaign must not adopt a fault-free snapshot (or
  // vice versa) — the grammars, registries and RNG draw sequences differ.
  Case env_case{"env_faults", config};
  env_case.changed.env_faults = true;
  cases.push_back(env_case);
  // v6: the transition blend weight changes seed-energy assignment, so a
  // snapshot taken under one weight must not resume under another.
  Case weight_case{"transition_weight", config};
  weight_case.changed.transition_weight = 0.5;
  cases.push_back(weight_case);

  for (const Case& c : cases) {
    SnapshotReader reader(payload);
    Status status = CheckSnapshotIdentity(reader, c.strategy, c.changed);
    ASSERT_FALSE(status.ok()) << c.field;
    EXPECT_NE(status.message().find(c.field), std::string::npos)
        << "message should name '" << c.field << "': " << status.ToString();
  }

  // The unmodified config passes.
  SnapshotReader reader(payload);
  EXPECT_TRUE(CheckSnapshotIdentity(reader, "Themis", config).ok());
}

// End to end through the campaign: a checkpoint directory holding another
// campaign's snapshot is not silently adopted.
TEST(SnapshotCorruptionTest, CampaignRefusesForeignSnapshotAndRunsFresh) {
  const std::string dir = FreshDir("foreign");
  CampaignConfig other;
  other.flavor = Flavor::kLeo;
  other.seed = 555;
  other.budget = Hours(1);
  other.checkpoint_dir = dir;
  other.checkpoint_every_ops = 300;
  other.halt_after_checkpoints = 1;
  ASSERT_FALSE(Campaign(other).Run("Themis").ok());

  CampaignConfig mine = other;
  mine.seed = 556;  // different campaign
  mine.halt_after_checkpoints = 0;
  mine.resume = true;
  Result<CampaignResult> resumed = Campaign(mine).Run("Themis");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  CampaignConfig plain = mine;
  plain.checkpoint_dir.clear();
  plain.checkpoint_every_ops = 0;
  plain.resume = false;
  Result<CampaignResult> fresh = Campaign(plain).Run("Themis");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(resumed->Digest(), fresh->Digest());
}

// Format v3 field-level validation: the cluster's rate-window section and
// the model's dense previous-window table are restored into indexed
// structures, so a corrupt entry must be rejected descriptively — never
// silently adopted (wrong deltas forever after) or allowed to drive an
// allocation off a hostile index.
TEST(SnapshotCorruptionTest, ClusterRateWindowCorruptionIsRejected) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 909);
  // Accumulate distinctive cumulative counters, close the window, then open
  // exactly one fresh window so the saved section is a single, byte-wise
  // predictable entry we can locate inside the payload.
  Rng rng(909);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  for (int i = 0; i < 300; ++i) {
    Operation op = generator.GenerateOp(rng);
    model.Observe(op, dfs->Execute(op));
  }
  dfs->AdvanceLoadWindow();
  NodeId target = kInvalidNode;
  double base_cpu = 0.0;
  uint64_t base_net = 0;
  for (const LoadSample& sample : dfs->SampleLoad()) {
    if (sample.is_storage && sample.online && !sample.crashed &&
        sample.requests + sample.read_ios + sample.write_ios > base_net) {
      target = sample.node;
      base_cpu = sample.cpu_seconds;
      base_net = sample.requests + sample.read_ios + sample.write_ios;
    }
  }
  ASSERT_NE(target, kInvalidNode);
  ASSERT_GT(base_net, 0u);
  dfs->InjectCpuLoad(target, 1.75);

  SnapshotWriter writer;
  dfs->SaveState(writer);
  SnapshotWriter needle;
  needle.U64(1);  // one active window
  needle.U32(target);
  needle.F64(base_cpu);
  needle.U64(base_net);
  size_t pos = writer.buffer().find(needle.buffer());
  ASSERT_NE(pos, std::string::npos) << "window section not found in payload";
  ASSERT_EQ(writer.buffer().find(needle.buffer(), pos + 1), std::string::npos)
      << "window section bytes must be unique for targeted corruption";

  auto patch_u32 = [](std::string& bytes, size_t at, uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes[at + static_cast<size_t>(i)] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
  };
  auto patch_u64 = [](std::string& bytes, size_t at, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes[at + static_cast<size_t>(i)] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
  };

  // Case 1: the window names a node the topology does not contain.
  std::string unknown_node = writer.buffer();
  patch_u32(unknown_node, pos + 8, 999999);
  std::unique_ptr<DfsCluster> fresh = MakeCluster(Flavor::kGluster, 909);
  SnapshotReader unknown_reader(unknown_node);
  Status status = fresh->RestoreState(unknown_reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown node"), std::string::npos)
      << status.ToString();

  // Case 2: the base claims more traffic than the node's cumulative
  // counters — an impossible (negative) window.
  std::string bad_base = writer.buffer();
  patch_u64(bad_base, pos + 8 + 4 + 8, ~uint64_t{0});
  fresh = MakeCluster(Flavor::kGluster, 909);
  SnapshotReader bad_base_reader(bad_base);
  status = fresh->RestoreState(bad_base_reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceeds counters"), std::string::npos)
      << status.ToString();

  // The unmodified payload restores cleanly.
  fresh = MakeCluster(Flavor::kGluster, 909);
  SnapshotReader ok_reader(writer.buffer());
  EXPECT_TRUE(fresh->RestoreState(ok_reader).ok());
}

// Format v4 field-level validation: the EnvFaultInjector record arms live
// fault machinery on restore, so every malformed record — a rate beyond the
// grammar bound, an impossible slow-disk factor, a duplicate or unsorted
// entry, a restart sequence number the injector never issued — must fail
// the snapshot instead of arming an out-of-grammar schedule.
TEST(SnapshotCorruptionTest, MalformedEnvFaultRecordsAreRejected) {
  auto rates = [](SnapshotWriter& writer, uint64_t loss) {
    writer.U64(loss);
    writer.U64(0);  // reorder
    writer.U64(0);  // duplicate
    writer.U64(0);  // corrupt
  };
  auto expect_rejected = [](const SnapshotWriter& writer, const char* needle) {
    EnvFaultInjector injector(/*seed=*/1);
    SnapshotReader reader(writer.buffer());
    Status status = injector.RestoreState(reader);
    ASSERT_FALSE(status.ok()) << needle;
    EXPECT_NE(status.message().find("malformed env fault record"),
              std::string::npos)
        << status.ToString();
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << status.ToString();
  };

  {  // A message-fault rate beyond the 500 permille grammar bound.
    SnapshotWriter writer;
    rates(writer, 600);
    expect_rejected(writer, "message-loss rate 600 out of range");
  }
  {  // A slow-disk factor below the 110% floor.
    SnapshotWriter writer;
    rates(writer, 0);
    writer.U64(1);   // one slow-disk entry
    writer.U32(3);   // node
    writer.U64(50);  // percent: out of [110, 1000]
    writer.I64(10);  // until
    expect_rejected(writer, "slow-disk factor 50 out of range");
  }
  {  // The same node degraded twice in one record.
    SnapshotWriter writer;
    rates(writer, 0);
    writer.U64(2);
    for (int i = 0; i < 2; ++i) {
      writer.U32(3);
      writer.U64(200);
      writer.I64(10);
    }
    expect_rejected(writer, "duplicate slow-disk entry for node 3");
  }
  {  // A restart schedule that is not sorted by (time, sequence).
    SnapshotWriter writer;
    rates(writer, 0);
    writer.U64(0);  // no slow disks
    writer.U64(2);  // two scheduled restarts
    writer.I64(100);
    writer.U32(1);
    writer.U64(1);
    writer.I64(50);  // earlier than its predecessor
    writer.U32(2);
    writer.U64(2);
    expect_rejected(writer, "restart schedule not sorted");
  }
  {  // A restart carrying a sequence number the injector never issued.
    SnapshotWriter writer;
    rates(writer, 0);
    writer.U64(0);
    writer.U64(1);
    writer.I64(100);
    writer.U32(1);
    writer.U64(5);  // seq 5 ...
    writer.U64(2);  // ... but next_restart_seq claims only 2 were issued
    expect_rejected(writer, "restart sequence from the future");
  }
}

// Format v5 field-level validation (DESIGN.md §15): the load-group
// assignment table routes every per-op charge into a per-group aggregate,
// so a corrupt entry would silently skew the rollup forever after — it must
// fail the restore with a message naming the node.
TEST(SnapshotCorruptionTest, LoadGroupTableCorruptionIsRejected) {
  GeoLikeCluster dfs;
  SnapshotWriter writer;
  dfs.SaveState(writer);

  // Locate the table by reconstructing its first entries from the engine's
  // own (public) view: U64 entry count, then (U32 id, U32 group) pairs in
  // node-id order.
  std::vector<NodeId> ids = dfs.ListStorageNodes();
  ASSERT_GE(ids.size(), 3u);
  SnapshotWriter needle;
  needle.U64(ids.size());
  for (int i = 0; i < 3; ++i) {
    needle.U32(ids[static_cast<size_t>(i)]);
    needle.U32(dfs.engine().GroupOf(ids[static_cast<size_t>(i)]));
  }
  size_t pos = writer.buffer().find(needle.buffer());
  ASSERT_NE(pos, std::string::npos) << "group table not found in payload";
  ASSERT_EQ(writer.buffer().find(needle.buffer(), pos + 1), std::string::npos)
      << "group table bytes must be unique for targeted corruption";

  auto patch_u32 = [](std::string& bytes, size_t at, uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes[at + static_cast<size_t>(i)] =
          static_cast<char>((value >> (8 * i)) & 0xff);
    }
  };
  auto expect_rejected = [](const std::string& payload, const char* message) {
    GeoLikeCluster fresh;
    SnapshotReader reader(payload);
    Status status = fresh.RestoreState(reader);
    ASSERT_FALSE(status.ok()) << message;
    EXPECT_NE(status.message().find(message), std::string::npos)
        << status.ToString();
  };

  const size_t first_id = pos + 8;      // after the U64 count
  const size_t first_group = pos + 12;  // its group
  const size_t second_id = pos + 16;

  std::string unknown = writer.buffer();
  patch_u32(unknown, first_id, 999999);
  expect_rejected(unknown, "load group assigns unknown storage node");

  std::string out_of_range = writer.buffer();
  patch_u32(out_of_range, first_group, 1u << 20);
  expect_rejected(out_of_range, "out of range");

  std::string duplicate = writer.buffer();
  patch_u32(duplicate, second_id, ids[0]);  // first node assigned twice
  expect_rejected(duplicate, "duplicate load group assignment");

  // The unmodified payload restores cleanly.
  GeoLikeCluster fresh;
  SnapshotReader ok_reader(writer.buffer());
  EXPECT_TRUE(fresh.RestoreState(ok_reader).ok());
}

// The GeoFS flavor section persists each node's geotag; a tag outside the
// configured tree or naming an unknown node must be rejected — a silently
// adopted bad tag would mis-route every later placement decision.
TEST(SnapshotCorruptionTest, GeoFlavorStateCorruptionIsRejected) {
  GeoLikeCluster dfs;
  SnapshotWriter writer;
  dfs.SaveState(writer);

  // The flavor section is the payload's tail: a U64 count then per node
  // (U32 id, U32 site, U32 rack), reconstructed here from the engine's own
  // view. Two full entries disambiguate it from the group table, whose
  // entries are 8 bytes, not 12.
  std::vector<NodeId> ids = dfs.ListStorageNodes();
  ASSERT_GE(ids.size(), 2u);
  SnapshotWriter needle;
  needle.U64(ids.size());
  for (int i = 0; i < 2; ++i) {
    GeoTag tag = dfs.engine().TagOf(ids[static_cast<size_t>(i)]);
    needle.U32(ids[static_cast<size_t>(i)]);
    needle.U32(tag.site);
    needle.U32(tag.rack);
  }
  size_t pos = writer.buffer().find(needle.buffer());
  ASSERT_NE(pos, std::string::npos) << "geotag section not found in payload";
  ASSERT_EQ(writer.buffer().find(needle.buffer(), pos + 1), std::string::npos)
      << "geotag section bytes must be unique for targeted corruption";

  auto patch_u32 = [](std::string& bytes, size_t at, uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes[at + static_cast<size_t>(i)] =
          static_cast<char>((value >> (8 * i)) & 0xff);
    }
  };
  auto expect_rejected = [](const std::string& payload, const char* message) {
    GeoLikeCluster fresh;
    SnapshotReader reader(payload);
    Status status = fresh.RestoreState(reader);
    ASSERT_FALSE(status.ok()) << message;
    EXPECT_NE(status.message().find(message), std::string::npos)
        << status.ToString();
  };

  std::string unknown = writer.buffer();
  patch_u32(unknown, pos + 8, 999999);
  expect_rejected(unknown, "geotag references unknown storage node");

  std::string bad_site = writer.buffer();
  patch_u32(bad_site, pos + 12, 99);  // site beyond the 3-site tree
  expect_rejected(bad_site, "out of tree bounds");

  GeoLikeCluster fresh;
  SnapshotReader ok_reader(writer.buffer());
  EXPECT_TRUE(fresh.RestoreState(ok_reader).ok());
}

// Format v6 field-level validation (DESIGN.md §16): the model-coverage
// record and the bandit arm tables restore into indexed counters and live
// scheduling state, so every malformed shape — a truncated arm table, a
// transition count that cannot match the pair list, a state id from another
// flavor's machine — must fail the restore descriptively. End to end, a
// campaign whose newest snapshot rots this way falls back to the newest
// valid one (ResumeFallsBackToNewestValidSnapshot covers the file layer).
TEST(SnapshotCorruptionTest, TruncatedBanditArmTableIsRejected) {
  Rng rng(1);
  InputModel model;
  auto made = StrategyRegistry::Instance().Make("Bandit", model, rng);
  ASSERT_TRUE(made.ok());
  BanditStrategy* bandit = static_cast<BanditStrategy*>(made->get());
  SnapshotWriter writer;
  bandit->SaveState(writer);

  // A snapshot advertising fewer arms than the live strategy has.
  SnapshotWriter truncated;
  truncated.I64(0);  // active arm
  truncated.I64(0);  // round position
  truncated.U64(bandit->arms().size() - 1);
  SnapshotReader count_reader(truncated.buffer());
  Status status = bandit->RestoreState(count_reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bandit arm table truncated"),
            std::string::npos)
      << status.ToString();

  // A renamed arm: the count matches but the table belongs to a different
  // arm set, so adopting the statistics would misattribute every reward.
  std::string renamed = writer.buffer();
  const std::string& first_name = bandit->arms()[0].name;
  size_t pos = renamed.find(first_name);
  ASSERT_NE(pos, std::string::npos);
  renamed[pos] = 'X';
  SnapshotReader rename_reader(renamed);
  status = bandit->RestoreState(rename_reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bandit arm table truncated"),
            std::string::npos)
      << status.ToString();

  // An active-arm index beyond the table.
  SnapshotWriter bad_active;
  bad_active.I64(static_cast<int64_t>(bandit->arms().size()));
  bad_active.I64(0);
  bad_active.U64(bandit->arms().size());
  SnapshotReader active_reader(bad_active.buffer());
  status = bandit->RestoreState(active_reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bandit schedule state out of range"),
            std::string::npos)
      << status.ToString();

  // The unmodified record restores cleanly.
  SnapshotReader ok_reader(writer.buffer());
  EXPECT_TRUE(bandit->RestoreState(ok_reader).ok());
}

TEST(SnapshotCorruptionTest, ModelCoverageTransitionCountOverflowIsRejected) {
  ModelCoverage original(Flavor::kGluster);
  original.Transition(BalancerState::kGlusterFixLayout);
  original.Transition(BalancerState::kGlusterMigrateData);
  SnapshotWriter writer;
  original.SaveState(writer);

  auto expect_rejected = [](const std::string& payload, const char* message) {
    ModelCoverage fresh(Flavor::kGluster);
    SnapshotReader reader(payload);
    Status status = fresh.RestoreState(reader);
    ASSERT_FALSE(status.ok()) << message;
    EXPECT_NE(status.message().find(message), std::string::npos)
        << status.ToString();
  };

  // A covered count far beyond the pair table: must fail fast, not allocate.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U64(2);              // total
    corrupt.U64(0);              // illegal
    corrupt.U64(~uint64_t{0});   // covered: overflow
    expect_rejected(corrupt.buffer(),
                    "model coverage: transition count overflow");
  }
  // Pair counts that cannot sum to the recorded total.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U64(2);  // total claims two transitions...
    corrupt.U64(0);
    corrupt.U64(1);  // ...but the single pair carries five
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kGlusterFixLayout));
    corrupt.U64(5);
    expect_rejected(corrupt.buffer(),
                    "model coverage: transition count overflow");
  }
  // The same pair listed twice.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U64(2);
    corrupt.U64(0);
    corrupt.U64(2);
    for (int i = 0; i < 2; ++i) {
      corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
      corrupt.U8(static_cast<uint8_t>(BalancerState::kGlusterFixLayout));
      corrupt.U64(1);
    }
    expect_rejected(corrupt.buffer(),
                    "model coverage: duplicate transition pair");
  }

  // The unmodified record restores cleanly.
  ModelCoverage fresh(Flavor::kGluster);
  SnapshotReader ok_reader(writer.buffer());
  EXPECT_TRUE(fresh.RestoreState(ok_reader).ok());
}

TEST(SnapshotCorruptionTest, ModelCoverageUnknownStateIdIsRejected) {
  auto expect_rejected = [](const std::string& payload) {
    ModelCoverage fresh(Flavor::kGluster);
    SnapshotReader reader(payload);
    Status status = fresh.RestoreState(reader);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("model coverage: unknown balancer state"),
              std::string::npos)
        << status.ToString();
  };

  // A current state id beyond the enum.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(200);  // no such BalancerState
    corrupt.U64(0);
    corrupt.U64(0);
    corrupt.U64(0);
    expect_rejected(corrupt.buffer());
  }
  // A current state from another flavor's machine (HDFS pairing inside a
  // Gluster record): structurally a valid id, semantically foreign.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kHdfsPairing));
    corrupt.U64(0);
    corrupt.U64(0);
    corrupt.U64(0);
    expect_rejected(corrupt.buffer());
  }
  // A foreign state id inside a transition pair.
  {
    SnapshotWriter corrupt;
    corrupt.U8(static_cast<uint8_t>(Flavor::kGluster));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U64(1);
    corrupt.U64(0);
    corrupt.U64(1);
    corrupt.U8(static_cast<uint8_t>(BalancerState::kIdle));
    corrupt.U8(static_cast<uint8_t>(BalancerState::kCephApply));
    corrupt.U64(1);
    expect_rejected(corrupt.buffer());
  }
}

TEST(SnapshotCorruptionTest, ModelRejectsOutOfRangePreviousWindowNode) {
  SnapshotWriter writer;
  writer.U64(1);                // one previous-window entry
  writer.U32((1u << 24) + 1);   // hostile dense index
  writer.F64(1.0);
  writer.U64(5);
  writer.F64(1.0);              // EMA computation
  writer.F64(1.0);              // EMA network
  LoadVarianceModel model;
  SnapshotReader reader(writer.buffer());
  Status status = model.RestoreState(reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace themis
