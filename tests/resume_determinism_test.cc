// The tentpole guarantee (ISSUE: checkpointable, crash-tolerant campaigns):
// a campaign killed at ANY checkpoint and resumed — possibly crashed and
// resumed repeatedly — produces byte-identical per-flavor digests and
// telemetry summaries versus a campaign that never stopped, at any --jobs
// count. Crashes are modeled in-process with the halt_after_checkpoints
// hook (the CI resume-smoke job does the same with a real SIGKILL).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/harness/campaign.h"
#include "src/harness/runner.h"
#include "src/harness/snapshot.h"
#include "src/harness/telemetry_export.h"

namespace themis {
namespace {

std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("resume_det_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

constexpr Flavor kFlavors[] = {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph,
                               Flavor::kLeo};

CampaignConfig BaseConfig(Flavor flavor) {
  CampaignConfig config;
  config.flavor = flavor;
  config.seed = 9001;
  config.budget = Hours(2);
  return config;
}

// Crash at checkpoint 1, resume and crash again one checkpoint later,
// resume to completion: every flavor must land on the uninterrupted digest,
// whichever checkpoint the run died at.
TEST(ResumeDeterminismTest, RepeatedCrashesConvergeToUninterruptedDigest) {
  for (Flavor flavor : kFlavors) {
    const std::string flavor_name(FlavorName(flavor));
    Result<CampaignResult> uninterrupted =
        Campaign(BaseConfig(flavor)).Run("Themis");
    ASSERT_TRUE(uninterrupted.ok()) << flavor_name;

    const std::string dir = FreshDir("crash_" + flavor_name);
    CampaignConfig checkpointed = BaseConfig(flavor);
    checkpointed.checkpoint_dir = dir;
    checkpointed.checkpoint_every_ops = 400;

    CampaignConfig crash = checkpointed;
    crash.halt_after_checkpoints = 1;
    Result<CampaignResult> first = Campaign(crash).Run("Themis");
    ASSERT_FALSE(first.ok()) << flavor_name;  // died at checkpoint 1

    crash.resume = true;  // crash again, one checkpoint further in
    Result<CampaignResult> second = Campaign(crash).Run("Themis");
    ASSERT_FALSE(second.ok()) << flavor_name;

    CampaignConfig finish = checkpointed;
    finish.resume = true;
    Result<CampaignResult> resumed = Campaign(finish).Run("Themis");
    ASSERT_TRUE(resumed.ok()) << flavor_name << ": "
                              << resumed.status().ToString();
    EXPECT_EQ(resumed->Digest(), uninterrupted->Digest()) << flavor_name;
    EXPECT_EQ(resumed->testcases, uninterrupted->testcases) << flavor_name;
    EXPECT_EQ(resumed->total_ops, uninterrupted->total_ops) << flavor_name;
    EXPECT_EQ(resumed->final_coverage, uninterrupted->final_coverage)
        << flavor_name;
  }
}

// The checkpoint cadence itself must not influence results: snapshotting
// draws no randomness and mutates nothing, so two cadences land on the same
// digest as no checkpointing at all.
TEST(ResumeDeterminismTest, CheckpointCadenceDoesNotPerturbResults) {
  Result<CampaignResult> plain = Campaign(BaseConfig(Flavor::kCeph)).Run("Themis");
  ASSERT_TRUE(plain.ok());
  for (uint64_t every : {250u, 1000u}) {
    CampaignConfig config = BaseConfig(Flavor::kCeph);
    config.checkpoint_dir = FreshDir("cadence_" + std::to_string(every));
    config.checkpoint_every_ops = every;
    Result<CampaignResult> checkpointed = Campaign(config).Run("Themis");
    ASSERT_TRUE(checkpointed.ok());
    EXPECT_EQ(checkpointed->Digest(), plain->Digest()) << "every " << every;
  }
}

// Matrix-level: 4 flavors x 2 seeds, all jobs killed mid-campaign, resumed
// under --jobs 8 and then --jobs 1. Both resumes must render a summary JSON
// byte-identical to the uninterrupted matrix's.
TEST(ResumeDeterminismTest, MatrixResumeIsByteIdenticalAtAnyJobsCount) {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph, Flavor::kLeo};
  matrix.strategies = {"Themis"};
  matrix.seeds = 2;
  matrix.matrix_seed = 777;
  matrix.base.budget = Hours(2);

  RunnerOptions uninterrupted_options;
  uninterrupted_options.jobs = 8;
  MatrixResult uninterrupted = CampaignRunner(uninterrupted_options).Run(matrix);
  ASSERT_EQ(uninterrupted.FailedJobs(), 0);
  const std::string expected = RenderCampaignSummaryJson(uninterrupted);

  const std::string dir = FreshDir("matrix");
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(matrix);
  ASSERT_EQ(jobs.size(), 8u);
  for (CampaignJob& job : jobs) {
    job.config.checkpoint_dir = dir;
    job.config.checkpoint_every_ops = 400;
    job.config.halt_after_checkpoints = 1;
  }
  RunnerOptions crash_options;
  crash_options.jobs = 8;
  MatrixResult crashed = CampaignRunner(crash_options).RunJobs(jobs);
  ASSERT_EQ(crashed.FailedJobs(), 8);  // every job died at its checkpoint

  for (CampaignJob& job : jobs) {
    job.config.halt_after_checkpoints = 0;
    job.config.resume = true;
  }
  MatrixResult resumed8 = CampaignRunner(crash_options).RunJobs(jobs);
  ASSERT_EQ(resumed8.FailedJobs(), 0);
  EXPECT_EQ(RenderCampaignSummaryJson(resumed8), expected);

  // A second resume finds every job's final snapshot and short-circuits to
  // the stored results — still byte-identical, now at --jobs 1.
  RunnerOptions single;
  single.jobs = 1;
  MatrixResult resumed1 = CampaignRunner(single).RunJobs(jobs);
  ASSERT_EQ(resumed1.FailedJobs(), 0);
  EXPECT_EQ(RenderCampaignSummaryJson(resumed1), expected);
}

// The crash hook stops the process right after the snapshot lands on disk,
// with the snapshot naming scheme the resume scan expects.
TEST(ResumeDeterminismTest, HaltHookLeavesAResumableSnapshot) {
  const std::string dir = FreshDir("halt");
  CampaignConfig config = BaseConfig(Flavor::kGluster);
  config.checkpoint_dir = dir;
  config.checkpoint_every_ops = 400;
  config.halt_after_checkpoints = 2;
  Result<CampaignResult> crash = Campaign(config).Run("Themis");
  ASSERT_FALSE(crash.ok());
  EXPECT_EQ(crash.status().code(), StatusCode::kFailedPrecondition);

  std::vector<std::string> snapshots = ListJobSnapshotPaths(dir, 0);
  ASSERT_EQ(snapshots.size(), 2u);  // ordinals 2 and 1, newest first
  EXPECT_NE(snapshots[0].find("job-0-2.ckpt"), std::string::npos);
  EXPECT_NE(snapshots[1].find("job-0-1.ckpt"), std::string::npos);
  Result<LoadedSnapshot> newest = ReadSnapshotFile(snapshots[0]);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->kind, SnapshotKind::kMidCampaign);
}

// Env-faulted campaigns resume bit-identically too (snapshot format v4):
// the checkpoint can land between a kEnvCrashNode and its scheduled restart,
// so the armed rates, slow-disk windows and the restart schedule must all
// ride through the EnvFaultInjector record in the mid-campaign snapshot.
TEST(ResumeDeterminismTest, EnvFaultedCampaignResumesToUninterruptedDigest) {
  for (Flavor flavor : {Flavor::kGluster, Flavor::kHdfs}) {
    const std::string flavor_name(FlavorName(flavor));
    CampaignConfig config = BaseConfig(flavor);
    config.env_faults = true;
    Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
    ASSERT_TRUE(uninterrupted.ok()) << flavor_name;

    const std::string dir = FreshDir("env_" + flavor_name);
    CampaignConfig crash = config;
    crash.checkpoint_dir = dir;
    // A tight cadence: many checkpoints land inside armed fault schedules
    // (including between a crash and its restart) rather than between them.
    crash.checkpoint_every_ops = 200;
    crash.halt_after_checkpoints = 2;
    ASSERT_FALSE(Campaign(crash).Run("Themis").ok()) << flavor_name;

    CampaignConfig finish = config;
    finish.checkpoint_dir = dir;
    finish.checkpoint_every_ops = 200;
    finish.resume = true;
    Result<CampaignResult> resumed = Campaign(finish).Run("Themis");
    ASSERT_TRUE(resumed.ok()) << flavor_name << ": "
                              << resumed.status().ToString();
    EXPECT_EQ(resumed->Digest(), uninterrupted->Digest()) << flavor_name;
    EXPECT_EQ(resumed->total_ops, uninterrupted->total_ops) << flavor_name;
  }
}

// Telemetry collection rides through kill/resume: an interrupted+resumed
// telemetry campaign reproduces the uninterrupted event stream exactly
// (events are part of the digest, but compare the count explicitly too).
TEST(ResumeDeterminismTest, TelemetryStreamSurvivesResume) {
  CampaignConfig config = BaseConfig(Flavor::kLeo);
  config.collect_telemetry = true;
  Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
  ASSERT_TRUE(uninterrupted.ok());

  const std::string dir = FreshDir("telemetry");
  CampaignConfig crash = config;
  crash.checkpoint_dir = dir;
  crash.checkpoint_every_ops = 500;
  crash.halt_after_checkpoints = 2;
  ASSERT_FALSE(Campaign(crash).Run("Themis").ok());

  CampaignConfig finish = config;
  finish.checkpoint_dir = dir;
  finish.checkpoint_every_ops = 500;
  finish.resume = true;
  Result<CampaignResult> resumed = Campaign(finish).Run("Themis");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->telemetry.size(), uninterrupted->telemetry.size());
  EXPECT_EQ(resumed->Digest(), uninterrupted->Digest());
}

}  // namespace
}  // namespace themis
