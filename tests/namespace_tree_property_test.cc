// Differential-oracle property test for the interned-path namespace tree.
//
// The oracle is a deliberately naive reference implementation keyed by full
// path strings in a std::map — the representation NamespaceTree used before
// the PathTable refactor. Both implementations execute the same randomized
// operation sequences; after every operation the status codes (and returned
// file ids) must match exactly, and at checkpoints the full observable state
// (file listing, counters, per-path entry metadata) must be EXPECT_EQ-equal.
//
// This pins the tricky interned-tree behaviors the unit tests spot-check:
// deep-subtree renames (edge reparenting vs key rewriting), re-created paths
// reusing interner nodes, and emptiness tracked by live child counts.

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dfs/namespace_tree.h"

namespace themis {
namespace {

// Reference model: full-path string keys, semantics copied from the
// pre-refactor std::map implementation.
class RefTree {
 public:
  RefTree() { entries_["/"] = NamespaceEntry{.is_dir = true}; }

  Status MakeDir(const std::string& path) {
    if (path == "/") {
      return Status::AlreadyExists("root always exists");
    }
    if (entries_.count(path) != 0) {
      return Status::AlreadyExists(path);
    }
    if (!ParentIsDir(path)) {
      return Status::NotFound("parent");
    }
    entries_[path] = NamespaceEntry{.is_dir = true};
    return Status::Ok();
  }

  Status RemoveDir(const std::string& path) {
    if (path == "/") {
      return Status::InvalidArgument("cannot remove root");
    }
    auto it = entries_.find(path);
    if (it == entries_.end() || !it->second.is_dir) {
      return Status::NotFound(path);
    }
    if (HasChildren(path)) {
      return Status::FailedPrecondition("directory not empty");
    }
    entries_.erase(it);
    return Status::Ok();
  }

  Result<FileId> CreateFile(const std::string& path, uint64_t size) {
    if (path == "/") {
      return Status::InvalidArgument("cannot create file at root path");
    }
    if (entries_.count(path) != 0) {
      return Status::AlreadyExists(path);
    }
    if (!ParentIsDir(path)) {
      return Status::NotFound("parent");
    }
    FileId id = next_file_id_++;
    entries_[path] = NamespaceEntry{.is_dir = false, .file_id = id, .size = size};
    return id;
  }

  Status RemoveFile(const std::string& path) {
    auto it = entries_.find(path);
    if (it == entries_.end() || it->second.is_dir) {
      return Status::NotFound(path);
    }
    entries_.erase(it);
    return Status::Ok();
  }

  Status SetFileSize(const std::string& path, uint64_t size) {
    auto it = entries_.find(path);
    if (it == entries_.end() || it->second.is_dir) {
      return Status::NotFound(path);
    }
    it->second.size = size;
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) {
    if (from == "/" || to == "/") {
      return Status::InvalidArgument("cannot rename root");
    }
    if (from == to) {
      return Status::InvalidArgument("rename onto itself");
    }
    auto src = entries_.find(from);
    if (src == entries_.end()) {
      return Status::NotFound(from);
    }
    if (entries_.count(to) != 0) {
      return Status::AlreadyExists(to);
    }
    if (!ParentIsDir(to)) {
      return Status::NotFound("destination parent");
    }
    if (src->second.is_dir && IsPathPrefix(from, to)) {
      return Status::InvalidArgument("cannot move a directory under itself");
    }
    if (src->second.is_dir) {
      // Rewrite every key under `from` — the O(subtree) cost the interned
      // tree's edge reparenting avoids, but byte-for-byte the same result.
      std::map<std::string, NamespaceEntry> moved;
      for (auto it = entries_.lower_bound(from + "/");
           it != entries_.end() && IsPathPrefix(from, it->first);) {
        moved[to + it->first.substr(from.size())] = it->second;
        it = entries_.erase(it);
      }
      NamespaceEntry entry = src->second;
      entries_.erase(from);
      entries_[to] = entry;
      entries_.insert(moved.begin(), moved.end());
    } else {
      NamespaceEntry entry = src->second;
      entries_.erase(src);
      entries_[to] = entry;
    }
    return Status::Ok();
  }

  const NamespaceEntry* Find(const std::string& path) const {
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> ListFiles() const {
    std::vector<std::string> out;
    for (const auto& [path, entry] : entries_) {
      if (!entry.is_dir) {
        out.push_back(path);
      }
    }
    return out;  // std::map iterates lexicographically already
  }

  size_t file_count() const { return ListFiles().size(); }

  size_t dir_count() const {
    size_t n = 0;
    for (const auto& [path, entry] : entries_) {
      if (entry.is_dir && path != "/") {
        ++n;
      }
    }
    return n;
  }

  uint64_t total_bytes() const {
    uint64_t sum = 0;
    for (const auto& [path, entry] : entries_) {
      if (!entry.is_dir) {
        sum += entry.size;
      }
    }
    return sum;
  }

  std::string PathOf(FileId id) const {
    for (const auto& [path, entry] : entries_) {
      if (!entry.is_dir && entry.file_id == id) {
        return path;
      }
    }
    return {};
  }

 private:
  static bool IsPathPrefix(const std::string& dir, const std::string& path) {
    return path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
  }

  bool ParentIsDir(const std::string& path) const {
    size_t pos = path.rfind('/');
    std::string parent = pos == 0 ? "/" : path.substr(0, pos);
    auto it = entries_.find(parent);
    return it != entries_.end() && it->second.is_dir;
  }

  bool HasChildren(const std::string& path) const {
    auto it = entries_.upper_bound(path);
    return it != entries_.end() && IsPathPrefix(path, it->first);
  }

  std::map<std::string, NamespaceEntry> entries_;
  FileId next_file_id_ = 1;
};

// Compares every observable surface of the two trees.
void ExpectStateEqual(const NamespaceTree& tree, const RefTree& ref,
                      const std::vector<std::string>& universe) {
  EXPECT_EQ(tree.ListFiles(), ref.ListFiles());
  EXPECT_EQ(tree.file_count(), ref.file_count());
  EXPECT_EQ(tree.dir_count(), ref.dir_count());
  EXPECT_EQ(tree.total_bytes(), ref.total_bytes());
  for (const std::string& path : universe) {
    const NamespaceEntry* a = tree.Find(path);
    const NamespaceEntry* b = ref.Find(path);
    ASSERT_EQ(a != nullptr, b != nullptr) << path;
    if (a != nullptr) {
      EXPECT_EQ(a->is_dir, b->is_dir) << path;
      if (!a->is_dir) {
        EXPECT_EQ(a->file_id, b->file_id) << path;
        EXPECT_EQ(a->size, b->size) << path;
        EXPECT_EQ(tree.PathOf(a->file_id), ref.PathOf(b->file_id)) << path;
      }
    }
    EXPECT_EQ(tree.IsFile(path), b != nullptr && !b->is_dir) << path;
    EXPECT_EQ(tree.IsDir(path), b != nullptr && b->is_dir) << path;
  }
}

// All paths over `width` component names per level, up to `depth` levels.
std::vector<std::string> BuildUniverse(int width, int depth) {
  std::vector<std::string> out;
  std::vector<std::string> frontier = {""};
  for (int level = 0; level < depth; ++level) {
    std::vector<std::string> next;
    for (const std::string& base : frontier) {
      for (int c = 0; c < width; ++c) {
        std::string path = base + "/" + std::string(1, static_cast<char>('a' + c));
        out.push_back(path);
        next.push_back(path);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(NamespaceTreeProperty, RandomOpsMatchReferenceModel) {
  const std::vector<std::string> universe = BuildUniverse(3, 4);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 rng(0x7E15C0DE + seed);
    NamespaceTree tree;
    RefTree ref;
    auto pick = [&]() -> const std::string& {
      return universe[rng() % universe.size()];
    };
    for (int step = 0; step < 4000; ++step) {
      switch (rng() % 7) {
        case 0: {
          const std::string& p = pick();
          EXPECT_EQ(tree.MakeDir(p).code(), ref.MakeDir(p).code()) << p;
          break;
        }
        case 1: {
          const std::string& p = pick();
          EXPECT_EQ(tree.RemoveDir(p).code(), ref.RemoveDir(p).code()) << p;
          break;
        }
        case 2: {
          const std::string& p = pick();
          uint64_t size = rng() % 4096;
          Result<FileId> a = tree.CreateFile(p, size);
          Result<FileId> b = ref.CreateFile(p, size);
          EXPECT_EQ(a.status().code(), b.status().code()) << p;
          if (a.ok() && b.ok()) {
            EXPECT_EQ(*a, *b) << p;  // same id allocation order
          }
          break;
        }
        case 3: {
          const std::string& p = pick();
          EXPECT_EQ(tree.RemoveFile(p).code(), ref.RemoveFile(p).code()) << p;
          break;
        }
        case 4: {
          const std::string& p = pick();
          uint64_t size = rng() % 4096;
          EXPECT_EQ(tree.SetFileSize(p, size).code(),
                    ref.SetFileSize(p, size).code())
              << p;
          break;
        }
        default: {
          const std::string& from = pick();
          const std::string& to = pick();
          EXPECT_EQ(tree.Rename(from, to).code(), ref.Rename(from, to).code())
              << from << " -> " << to;
          break;
        }
      }
      if (step % 500 == 0) {
        ExpectStateEqual(tree, ref, universe);
      }
    }
    ExpectStateEqual(tree, ref, universe);
  }
}

// Deep-subtree rename: the interned tree reparents one edge; the oracle
// rewrites every descendant key. Both must agree byte-for-byte, including
// the file-id mapping, across repeated renames and a rename chain that
// reuses previously vacated names.
TEST(NamespaceTreeProperty, DeepSubtreeRenameMatchesReference) {
  NamespaceTree tree;
  RefTree ref;
  auto both_ok = [&](Status a, Status b) {
    ASSERT_TRUE(a.ok()) << a.message();
    ASSERT_TRUE(b.ok()) << b.message();
  };
  // /r/d0/d1/.../d7 with two files per level.
  std::string dir = "/r";
  both_ok(tree.MakeDir(dir), ref.MakeDir(dir));
  for (int i = 0; i < 8; ++i) {
    dir += "/d" + std::to_string(i);
    both_ok(tree.MakeDir(dir), ref.MakeDir(dir));
    for (int f = 0; f < 2; ++f) {
      std::string file = dir + "/f" + std::to_string(f);
      uint64_t size = static_cast<uint64_t>(i) * 100 + static_cast<uint64_t>(f);
      Result<FileId> a = tree.CreateFile(file, size);
      Result<FileId> b = ref.CreateFile(file, size);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b);
    }
  }
  both_ok(tree.MakeDir("/other"), ref.MakeDir("/other"));
  // Move the whole tree under a new parent, twice, then back to a name that
  // was previously occupied.
  EXPECT_EQ(tree.Rename("/r", "/other/r").code(),
            ref.Rename("/r", "/other/r").code());
  EXPECT_EQ(tree.Rename("/other/r/d0", "/d0").code(),
            ref.Rename("/other/r/d0", "/d0").code());
  EXPECT_EQ(tree.Rename("/d0", "/r").code(), ref.Rename("/d0", "/r").code());
  // Illegal: directory under itself.
  EXPECT_EQ(tree.Rename("/r", "/r/d1/x").code(),
            ref.Rename("/r", "/r/d1/x").code());
  EXPECT_EQ(tree.ListFiles(), ref.ListFiles());
  EXPECT_EQ(tree.file_count(), ref.file_count());
  EXPECT_EQ(tree.dir_count(), ref.dir_count());
  EXPECT_EQ(tree.total_bytes(), ref.total_bytes());
  for (const std::string& path : tree.ListFiles()) {
    Result<FileId> id = tree.FileIdOf(path);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(tree.PathOf(*id), ref.PathOf(*id));
  }
}

// Re-created paths: deleting and re-creating the same names must not leak
// state from the previous incarnation (sizes, ids, directory-ness), even
// when a name flips between file and directory.
TEST(NamespaceTreeProperty, RecreatedPathsMatchReference) {
  NamespaceTree tree;
  RefTree ref;
  for (int round = 0; round < 50; ++round) {
    bool as_dir = (round % 2) == 0;
    if (as_dir) {
      EXPECT_EQ(tree.MakeDir("/x").code(), ref.MakeDir("/x").code());
      Result<FileId> a = tree.CreateFile("/x/f", static_cast<uint64_t>(round));
      Result<FileId> b = ref.CreateFile("/x/f", static_cast<uint64_t>(round));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
      EXPECT_EQ(tree.RemoveDir("/x").code(), ref.RemoveDir("/x").code());
      EXPECT_EQ(tree.RemoveFile("/x/f").code(), ref.RemoveFile("/x/f").code());
      EXPECT_EQ(tree.RemoveDir("/x").code(), ref.RemoveDir("/x").code());
    } else {
      Result<FileId> a = tree.CreateFile("/x", static_cast<uint64_t>(round));
      Result<FileId> b = ref.CreateFile("/x", static_cast<uint64_t>(round));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
      EXPECT_EQ(tree.RemoveFile("/x").code(), ref.RemoveFile("/x").code());
    }
    EXPECT_EQ(tree.file_count(), ref.file_count());
    EXPECT_EQ(tree.dir_count(), ref.dir_count());
    EXPECT_EQ(tree.total_bytes(), ref.total_bytes());
  }
  EXPECT_EQ(tree.ListFiles(), ref.ListFiles());
}

}  // namespace
}  // namespace themis
