// Property tests: core accounting invariants of the DFS simulator must hold
// under arbitrary operation streams, with and without active faults, across
// all four flavors.

#include <gtest/gtest.h>

#include <map>

#include "src/common/bytes.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/faults/injector.h"

namespace themis {
namespace {

constexpr uint64_t kLinkfileBytes = 4 * kKiB;

// Recomputes every brick's used_bytes from the chunk layouts + linkfiles and
// compares with the maintained counter.
void CheckBrickAccounting(const DfsCluster& dfs, const char* context) {
  std::map<BrickId, uint64_t> recomputed;
  for (const auto& [file, layout] : dfs.file_layouts()) {
    (void)file;
    for (const ChunkPlacement& chunk : layout.chunks) {
      for (BrickId b : chunk.replicas) {
        recomputed[b] += chunk.bytes;
      }
    }
  }
  for (const auto& [id, brick] : dfs.bricks()) {
    uint64_t expected = recomputed.count(id) != 0 ? recomputed[id] : 0;
    expected += static_cast<uint64_t>(brick.linkfiles) * kLinkfileBytes;
    EXPECT_EQ(brick.used_bytes, expected)
        << context << ": brick " << id << " (node " << brick.node
        << ") used=" << brick.used_bytes << " recomputed=" << expected;
  }
}

// Replica lists never contain duplicates and only reference known bricks.
void CheckReplicaSanity(const DfsCluster& dfs, const char* context) {
  for (const auto& [file, layout] : dfs.file_layouts()) {
    for (const ChunkPlacement& chunk : layout.chunks) {
      for (size_t i = 0; i < chunk.replicas.size(); ++i) {
        EXPECT_NE(dfs.FindBrick(chunk.replicas[i]), nullptr)
            << context << ": file " << file << " references a vanished brick";
        for (size_t j = i + 1; j < chunk.replicas.size(); ++j) {
          EXPECT_NE(chunk.replicas[i], chunk.replicas[j])
              << context << ": duplicate replica for file " << file;
        }
      }
    }
  }
}

struct InvariantCase {
  Flavor flavor;
  bool with_faults;
  uint64_t seed;
};

class ClusterInvariantsTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(ClusterInvariantsTest, AccountingHoldsUnderRandomOps) {
  const InvariantCase& param = GetParam();
  std::unique_ptr<DfsCluster> dfs = MakeCluster(param.flavor, param.seed);
  std::vector<FaultSpec> faults;
  if (param.with_faults) {
    faults = NewBugsFor(param.flavor);
    std::vector<FaultSpec> historical = HistoricalFaultsFor(param.flavor);
    faults.insert(faults.end(), historical.begin(), historical.end());
  }
  FaultInjector injector(faults, param.seed);
  dfs->set_fault_hooks(&injector);

  Rng rng(param.seed);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  for (int step = 0; step < 1200; ++step) {
    Operation op = generator.GenerateOp(rng);
    OpResult result = dfs->Execute(op);
    model.Observe(op, result);
    if (step % 50 == 0) {
      model.SyncFromDfs(*dfs);
    }
    if (step % 100 == 99) {
      CheckBrickAccounting(*dfs, "mid-stream");
      CheckReplicaSanity(*dfs, "mid-stream");
      if (HasFailure()) {
        ADD_FAILURE() << "failing at step " << step << " op " << op.ToString();
        return;
      }
    }
  }
  // Drain all background work, then re-check.
  (void)dfs->TriggerRebalance();
  for (int i = 0; i < 2000 && !dfs->RebalanceDone(); ++i) {
    dfs->AdvanceTime(Seconds(10));
  }
  CheckBrickAccounting(*dfs, "drained");
  CheckReplicaSanity(*dfs, "drained");
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, ClusterInvariantsTest,
    ::testing::Values(InvariantCase{Flavor::kHdfs, false, 11},
                      InvariantCase{Flavor::kHdfs, true, 12},
                      InvariantCase{Flavor::kCeph, false, 21},
                      InvariantCase{Flavor::kCeph, true, 22},
                      InvariantCase{Flavor::kGluster, false, 31},
                      InvariantCase{Flavor::kGluster, true, 32},
                      InvariantCase{Flavor::kLeo, false, 41},
                      InvariantCase{Flavor::kLeo, true, 42},
                      InvariantCase{Flavor::kGluster, true, 33},
                      InvariantCase{Flavor::kGluster, true, 34}),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      std::string name(FlavorName(info.param.flavor));
      name += info.param.with_faults ? "_faulty" : "_healthy";
      name += "_s" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace themis
