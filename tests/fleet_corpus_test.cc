// Corpus-directory hygiene (DESIGN.md §17), mirroring
// snapshot_corruption_test for the fleet's seed-exchange files: a published
// seed round-trips exactly; every corruption mode — foreign magic, stale
// version, truncation, bit flips in the payload, a lying length field, a
// name/fingerprint mismatch, a fingerprint/sequence mismatch, a bad flavor —
// is rejected with a descriptive error and never crashes; and the
// CorpusExchange importer counts each reject exactly once and never re-reads
// a file it refused.

#include "src/fleet/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/fuzzer.h"
#include "src/core/input_model.h"
#include "src/core/opseq.h"
#include "src/dfs/operation.h"
#include "src/fleet/exchange.h"
#include "src/fleet/fleet_io.h"

namespace themis {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("fleet_corpus_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

OpSeq TestSeq(uint64_t seed) {
  Rng rng(seed);
  OpSeq seq;
  int len = static_cast<int>(rng.NextRange(2, 9));
  for (int i = 0; i < len; ++i) {
    Operation op;
    op.kind =
        OpKindFromIndex(static_cast<int>(rng.NextRange(0, kOpKindCount - 1)));
    op.path = "/d" + std::to_string(rng.NextBelow(100));
    op.size = rng.NextBelow(1 << 16);
    seq.ops.push_back(op);
  }
  return seq;
}

CorpusSeed TestSeed(uint64_t seed) {
  CorpusSeed out;
  out.seq = TestSeq(seed);
  out.fingerprint = OpSeqFingerprint(out.seq);
  out.flavor = Flavor::kGluster;
  out.score = 1.25;
  out.transitions = 17;
  out.origin_job = 3;
  return out;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FleetCorpusTest, PublishReadRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  CorpusSeed seed = TestSeed(11);
  ASSERT_TRUE(PublishSeed(dir, seed).ok());

  std::vector<std::string> names = ListSeedFileNames(dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], SeedFileName(seed.fingerprint));

  Result<CorpusSeed> loaded =
      ReadSeedFile((fs::path(dir) / names[0]).string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, seed.fingerprint);
  EXPECT_EQ(loaded->flavor, seed.flavor);
  EXPECT_DOUBLE_EQ(loaded->score, seed.score);
  EXPECT_EQ(loaded->transitions, seed.transitions);
  EXPECT_EQ(loaded->origin_job, seed.origin_job);
  EXPECT_EQ(loaded->seq.size(), seed.seq.size());
  EXPECT_EQ(OpSeqFingerprint(loaded->seq), seed.fingerprint);
}

TEST(FleetCorpusTest, PublishIsIdempotentWhenFileExists) {
  std::string dir = FreshDir("idempotent");
  CorpusSeed seed = TestSeed(12);
  ASSERT_TRUE(PublishSeed(dir, seed).ok());
  std::string path = (fs::path(dir) / SeedFileName(seed.fingerprint)).string();
  std::string first = ReadAll(path);
  // Second publication with different metadata: skipped, bytes untouched.
  CorpusSeed again = seed;
  again.score = 99.0;
  ASSERT_TRUE(PublishSeed(dir, again).ok());
  EXPECT_EQ(ReadAll(path), first);
}

TEST(FleetCorpusTest, PublishRejectsEmptyAndMismatchedFingerprint) {
  std::string dir = FreshDir("badpublish");
  CorpusSeed empty;
  empty.fingerprint = 7;
  EXPECT_FALSE(PublishSeed(dir, empty).ok());
  CorpusSeed lying = TestSeed(13);
  lying.fingerprint ^= 1;
  EXPECT_FALSE(PublishSeed(dir, lying).ok());
  EXPECT_TRUE(ListSeedFileNames(dir).empty());
}

TEST(FleetCorpusTest, SeedFileNameParsesStrictly) {
  uint64_t fingerprint = 0;
  EXPECT_TRUE(ParseSeedFileName("seed-00000000deadbeef.seed", &fingerprint));
  EXPECT_EQ(fingerprint, 0xdeadbeefull);
  EXPECT_FALSE(ParseSeedFileName("seed-deadbeef.seed", &fingerprint));
  EXPECT_FALSE(ParseSeedFileName("seed-00000000deadbeef.seed.12.tmp",
                                 &fingerprint));
  EXPECT_FALSE(ParseSeedFileName("seed-zzzzzzzzdeadbeef.seed", &fingerprint));
  EXPECT_FALSE(ParseSeedFileName("notes.txt", &fingerprint));
}

struct CorruptionCase {
  const char* name;
  void (*corrupt)(std::string* bytes);
};

TEST(FleetCorpusTest, EveryCorruptionModeIsRejected) {
  const CorruptionCase kCases[] = {
      {"foreign magic", [](std::string* b) { (*b)[0] = 'X'; }},
      {"stale version", [](std::string* b) { (*b)[8] = 99; }},
      {"payload bit flip", [](std::string* b) { (*b)[40] ^= 0x20; }},
      {"checksum bit flip", [](std::string* b) { (*b)[20] ^= 0x01; }},
      {"truncated payload", [](std::string* b) { b->resize(b->size() - 5); }},
      {"truncated header", [](std::string* b) { b->resize(10); }},
      {"lying length field",
       [](std::string* b) { (*b)[12] = static_cast<char>((*b)[12] + 1); }},
      {"trailing garbage", [](std::string* b) { b->append("extra"); }},
  };
  for (const CorruptionCase& test_case : kCases) {
    std::string dir = FreshDir("corrupt");
    CorpusSeed seed = TestSeed(14);
    ASSERT_TRUE(PublishSeed(dir, seed).ok());
    std::string path =
        (fs::path(dir) / SeedFileName(seed.fingerprint)).string();
    std::string bytes = ReadAll(path);
    ASSERT_GT(bytes.size(), 45u);
    test_case.corrupt(&bytes);
    WriteAll(path, bytes);
    Result<CorpusSeed> loaded = ReadSeedFile(path);
    EXPECT_FALSE(loaded.ok()) << "corruption not caught: " << test_case.name;
  }
}

TEST(FleetCorpusTest, NameFingerprintMismatchIsRejected) {
  std::string dir = FreshDir("renamed");
  CorpusSeed seed = TestSeed(15);
  ASSERT_TRUE(PublishSeed(dir, seed).ok());
  std::string original =
      (fs::path(dir) / SeedFileName(seed.fingerprint)).string();
  std::string renamed =
      (fs::path(dir) / SeedFileName(seed.fingerprint ^ 0xff)).string();
  fs::rename(original, renamed);
  Result<CorpusSeed> loaded = ReadSeedFile(renamed);
  EXPECT_FALSE(loaded.ok());
}

TEST(FleetCorpusTest, WrongFlavorPayloadIsRejected) {
  std::string dir = FreshDir("flavor");
  CorpusSeed seed = TestSeed(16);
  seed.flavor = static_cast<Flavor>(250);  // out of range
  // PublishSeed doesn't validate flavor (the exchange sets it from its own
  // config); forge the file through the framing layer directly.
  SnapshotWriter writer;
  writer.U64(seed.fingerprint);
  writer.U8(250);
  writer.F64(seed.score);
  writer.U64(seed.transitions);
  writer.U64(seed.origin_job);
  SaveOpSeq(writer, seed.seq);
  std::string path =
      (fs::path(dir) / SeedFileName(seed.fingerprint)).string();
  ASSERT_TRUE(WriteFramedFile(path, kCorpusSeedMagic, kCorpusSeedFormatVersion,
                              writer.buffer())
                  .ok());
  Result<CorpusSeed> loaded = ReadSeedFile(path);
  EXPECT_FALSE(loaded.ok());
}

// The importer-side contract: rejects are counted once per bad file, the
// file is never offered to the strategy, and good seeds import normally
// alongside the bad ones.
TEST(FleetCorpusTest, ExchangeImportRejectsCorruptAndCountsOnce) {
  std::string dir = FreshDir("exchange");
  CorpusSeed good = TestSeed(17);
  ASSERT_TRUE(PublishSeed(dir, good).ok());
  CorpusSeed bad = TestSeed(18);
  ASSERT_TRUE(PublishSeed(dir, bad).ok());
  {
    std::string path = (fs::path(dir) / SeedFileName(bad.fingerprint)).string();
    std::string bytes = ReadAll(path);
    bytes[bytes.size() / 2] ^= 0x40;
    WriteAll(path, bytes);
  }

  CorpusExchangeOptions options;
  options.corpus_dir = dir;
  options.flavor = Flavor::kGluster;
  options.import_every = 1;
  options.heartbeat_every = 0;
  CorpusExchange exchange(options);

  InputModel model;
  Rng rng(1);
  ThemisFuzzer fuzzer(model, rng);
  ExecOutcome outcome;
  CampaignTick tick;
  // Two boundaries: the second must not re-read (or re-count) the reject.
  exchange.OnTestcase(fuzzer, outcome, tick);
  exchange.OnTestcase(fuzzer, outcome, tick);

  EXPECT_EQ(exchange.rejected(), 1u);
  EXPECT_EQ(exchange.imported(), 1u);
  ASSERT_NE(fuzzer.seed_pool(), nullptr);
  EXPECT_EQ(fuzzer.seed_pool()->size(), 1u);
  EXPECT_TRUE(fuzzer.seed_pool()->SeenFingerprint(good.fingerprint));
  EXPECT_FALSE(fuzzer.seed_pool()->SeenFingerprint(bad.fingerprint));
}

}  // namespace
}  // namespace themis
