// The study corpus must reproduce every statistic of paper §3.

#include <gtest/gtest.h>

#include <set>

#include "src/study/study_corpus.h"

namespace themis {
namespace {

TEST(StudyCorpus, Table1Counts) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.total, 53);
  EXPECT_EQ(s.per_platform[static_cast<int>(Flavor::kHdfs)], 18);
  EXPECT_EQ(s.per_platform[static_cast<int>(Flavor::kCeph)], 16);
  EXPECT_EQ(s.per_platform[static_cast<int>(Flavor::kGluster)], 12);
  EXPECT_EQ(s.per_platform[static_cast<int>(Flavor::kLeo)], 7);
}

TEST(StudyCorpus, Finding1SeverityShares) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.per_symptom[static_cast<int>(Symptom::kPerfDegradation)], 20);  // 38%
  EXPECT_EQ(s.per_symptom[static_cast<int>(Symptom::kPartialOutage)], 9);     // 17%
  EXPECT_EQ(s.per_symptom[static_cast<int>(Symptom::kDataLoss)], 7);          // 13%
  EXPECT_EQ(s.per_symptom[static_cast<int>(Symptom::kClusterFailure)], 7);    // 13%
  EXPECT_EQ(s.per_symptom[static_cast<int>(Symptom::kLimitedImpact)], 10);    // 18%
  // "Most (82%) lead to serious consequences affecting all or a majority."
  EXPECT_EQ(s.majority_impact, 43);
  EXPECT_NEAR(100.0 * s.majority_impact / s.total, 82.0, 1.5);
}

TEST(StudyCorpus, Finding2RootCauses) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.per_cause[static_cast<int>(StudyRootCause::kMigration)], 38);      // 72%
  EXPECT_EQ(s.per_cause[static_cast<int>(StudyRootCause::kLoadCalculation)], 8); // 15%
  EXPECT_EQ(s.per_cause[static_cast<int>(StudyRootCause::kStateCollection)], 7); // 13%
}

TEST(StudyCorpus, Finding3InternalSymptoms) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.per_internal[static_cast<int>(InternalSymptom::kDisk)], 34);    // 64%
  EXPECT_EQ(s.per_internal[static_cast<int>(InternalSymptom::kCpu)], 11);     // 21%
  EXPECT_EQ(s.per_internal[static_cast<int>(InternalSymptom::kNetwork)], 8);  // 15%
}

TEST(StudyCorpus, Finding4TriggerInputs) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.per_inputs[static_cast<int>(TriggerInputs::kRequestsOnly)], 7);  // 13%
  EXPECT_EQ(s.per_inputs[static_cast<int>(TriggerInputs::kConfigsOnly)], 2);   // 4%
  EXPECT_EQ(s.per_inputs[static_cast<int>(TriggerInputs::kBoth)], 44);         // 83%
}

TEST(StudyCorpus, Finding5StepCounts) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.steps_at_most_5, 35);  // 66%
  EXPECT_EQ(s.steps_6_to_8, 18);     // 34%
  for (const StudyRecord& record : StudyCorpus()) {
    EXPECT_GE(record.steps, 1);
    EXPECT_LE(record.steps, 8) << "Finding 5: no more than 8 operations";
  }
}

TEST(StudyCorpus, FiveEnvironmentGatedFailures) {
  StudySummary s = Summarize(StudyCorpus());
  EXPECT_EQ(s.gated, 5);
  int windows = 0;
  int hardware = 0;
  for (const StudyRecord& record : StudyCorpus()) {
    windows += record.gate == EnvGate::kWindowsOnly ? 1 : 0;
    hardware += record.gate == EnvGate::kHardware ? 1 : 0;
  }
  EXPECT_EQ(windows, 2);  // CephFS #41935, HDFS #4261
  EXPECT_EQ(hardware, 3); // CephFS #55568, GlusterFS #1699, HDFS #11741
}

TEST(StudyCorpus, IdsAreUnique) {
  std::set<std::string> ids;
  for (const StudyRecord& record : StudyCorpus()) {
    EXPECT_TRUE(ids.insert(record.id).second) << record.id;
  }
}

TEST(StudyCorpus, NamedPaperFailuresPresent) {
  std::set<std::string> ids;
  for (const StudyRecord& record : StudyCorpus()) {
    ids.insert(record.id);
  }
  // Failures the paper cites by number.
  EXPECT_TRUE(ids.count("HDFS-13279"));      // the motivating example
  EXPECT_TRUE(ids.count("GLUSTER-3356"));    // Fig. 2
  EXPECT_TRUE(ids.count("GLUSTER-1245142")); // the 8-step sequence
  EXPECT_TRUE(ids.count("LEOFS-1115"));
  EXPECT_TRUE(ids.count("CEPH-64333"));
  EXPECT_TRUE(ids.count("CEPH-63014"));
}

TEST(StudyCorpus, MotivatingExampleShape) {
  for (const StudyRecord& record : StudyCorpus()) {
    if (record.id == "HDFS-13279") {
      EXPECT_EQ(record.steps, 7);  // the seven key steps of Fig. 3
      EXPECT_EQ(record.inputs, TriggerInputs::kBoth);
      EXPECT_EQ(record.cause, StudyRootCause::kLoadCalculation);
    }
    if (record.id == "GLUSTER-1245142") {
      EXPECT_EQ(record.steps, 8);  // 'create, volume_add, mount, ...' (8 ops)
    }
  }
}

TEST(StudyCorpus, EnumNamesAreStable) {
  EXPECT_STREQ(SymptomName(Symptom::kDataLoss), "data loss");
  EXPECT_STREQ(StudyRootCauseName(StudyRootCause::kMigration), "data migration");
  EXPECT_STREQ(TriggerInputsName(TriggerInputs::kBoth), "requests + configs");
  EXPECT_STREQ(InternalSymptomName(InternalSymptom::kDisk), "disk");
}

}  // namespace
}  // namespace themis
