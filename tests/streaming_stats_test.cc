// Differential oracle for the push-based streaming load-stats API
// (DESIGN.md §13): two monitors observe the same cluster at the same
// checkpoints — one through the O(1) SnapshotLoadStats streaming path, one
// forced onto the full-scan SampleLoadInto oracle — and every field of both
// the raw LoadStatsSnapshot aggregates and the finalized
// LoadVarianceSnapshot must match exactly, not approximately. All shared
// sums are fixed-point integers precisely so this bit-identity holds; any
// tolerance here would hide a divergence between the per-op incremental
// accounting and the ground truth.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/faults/injector.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

void ExpectStatsEqual(const LoadStatsSnapshot& stream, const LoadStatsSnapshot& scan,
                      int step, const char* context) {
  auto check_dim = [&](const LoadDimAggregate& s, const LoadDimAggregate& o,
                       const char* dim) {
    EXPECT_EQ(s.sum, o.sum) << context << " step " << step << " " << dim;
    EXPECT_EQ(s.max_delta, o.max_delta) << context << " step " << step << " " << dim;
    EXPECT_EQ(s.count, o.count) << context << " step " << step << " " << dim;
    EXPECT_TRUE(s.sum_sq == o.sum_sq)
        << context << " step " << step << " " << dim << " sum_sq: "
        << static_cast<uint64_t>(s.sum_sq) << " vs " << static_cast<uint64_t>(o.sum_sq);
  };
  check_dim(stream.cpu_storage, scan.cpu_storage, "cpu_storage");
  check_dim(stream.cpu_meta, scan.cpu_meta, "cpu_meta");
  check_dim(stream.net_storage, scan.net_storage, "net_storage");
  check_dim(stream.net_meta, scan.net_meta, "net_meta");
  EXPECT_EQ(stream.taken_at, scan.taken_at) << context << " step " << step;
  EXPECT_EQ(stream.fraction_nodes, scan.fraction_nodes) << context << " step " << step;
  EXPECT_EQ(stream.max_fraction, scan.max_fraction) << context << " step " << step;
  EXPECT_EQ(stream.storage_used, scan.storage_used) << context << " step " << step;
  EXPECT_EQ(stream.storage_cap, scan.storage_cap) << context << " step " << step;
  EXPECT_EQ(stream.frac_sum, scan.frac_sum) << context << " step " << step;
  EXPECT_TRUE(stream.frac_sum_sq == scan.frac_sum_sq) << context << " step " << step;
  EXPECT_EQ(stream.serving_storage_nodes, scan.serving_storage_nodes)
      << context << " step " << step;
  EXPECT_EQ(stream.any_crashed, scan.any_crashed) << context << " step " << step;
  // Belt and braces: the aggregate structs are regular, so whole-value
  // equality must agree with the per-field checks above.
  EXPECT_TRUE(stream == scan) << context << " step " << step;
}

void ExpectSnapshotsEqual(const LoadVarianceSnapshot& stream,
                          const LoadVarianceSnapshot& scan, int step,
                          const char* context) {
  // Exact double equality: both paths feed identical integer aggregates
  // through the same FinalizeLoadStats + EMA fold, so the derived doubles
  // must be bit-identical.
  EXPECT_EQ(stream.taken_at, scan.taken_at) << context << " step " << step;
  EXPECT_EQ(stream.storage_ratio, scan.storage_ratio) << context << " step " << step;
  EXPECT_EQ(stream.computation_ratio, scan.computation_ratio)
      << context << " step " << step;
  EXPECT_EQ(stream.network_ratio, scan.network_ratio) << context << " step " << step;
  EXPECT_EQ(stream.instant_computation_ratio, scan.instant_computation_ratio)
      << context << " step " << step;
  EXPECT_EQ(stream.instant_network_ratio, scan.instant_network_ratio)
      << context << " step " << step;
  EXPECT_EQ(stream.any_crashed, scan.any_crashed) << context << " step " << step;
  EXPECT_EQ(stream.serving_storage_nodes, scan.serving_storage_nodes)
      << context << " step " << step;
}

struct StreamCase {
  Flavor flavor;
  bool with_faults;
  uint64_t seed;
  int steps;
  int storage_nodes = 0;  // 0 = the flavor's default
};

void RunDifferentialOracle(const StreamCase& param) {
  std::unique_ptr<DfsCluster> dfs =
      MakeCluster(param.flavor, param.seed, param.storage_nodes);
  std::vector<FaultSpec> faults;
  if (param.with_faults) {
    faults = NewBugsFor(param.flavor);
    std::vector<FaultSpec> historical = HistoricalFaultsFor(param.flavor);
    faults.insert(faults.end(), historical.begin(), historical.end());
  }
  FaultInjector injector(faults, param.seed);
  dfs->set_fault_hooks(&injector);

  LoadVarianceWeights weights;
  StatesMonitor streaming(weights);
  StatesMonitor oracle(weights);
  oracle.set_force_scan(true);

  Rng rng(param.seed);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);

  auto check = [&](int step, const char* context) {
    // Peek first: a side-effect-free preview that must equal the committed
    // sample taken an instant later.
    LoadVarianceSnapshot peek = streaming.Peek(*dfs);
    // Oracle first: the scan path reads counters without closing the
    // cluster's rate window, so the streaming sample still sees it intact.
    LoadVarianceSnapshot scan_snap = oracle.Sample(*dfs);
    LoadVarianceSnapshot stream_snap = streaming.Sample(*dfs);
    ASSERT_TRUE(streaming.last_sample_streamed()) << context << " step " << step;
    ASSERT_FALSE(oracle.last_sample_streamed()) << context << " step " << step;
    ExpectStatsEqual(streaming.latest_stats(), oracle.latest_stats(), step, context);
    ExpectSnapshotsEqual(stream_snap, scan_snap, step, context);
    ExpectSnapshotsEqual(peek, stream_snap, step, context);
  };

  check(-1, "initial");
  for (int step = 0; step < param.steps; ++step) {
    Operation op = generator.GenerateOp(rng);
    OpResult result = dfs->Execute(op);
    model.Observe(op, result);
    if (step % 50 == 0) {
      model.SyncFromDfs(*dfs);
    }
    // Interleave the non-op mutation sources the way a campaign does:
    // explicit rebalance triggers and background (migration/GC) time.
    if (step % 97 == 96) {
      (void)dfs->TriggerRebalance();
    }
    if (step % 13 == 12) {
      dfs->AdvanceTime(Seconds(30));
    }
    // Sample on a stride so windows span several ops (per-op deltas would
    // never exercise the lazy window-rebase path), plus every op early on.
    if (step < 100 || step % 7 == 0) {
      check(step, "mid-stream");
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "diverged at step " << step << " op " << op.ToString();
      return;
    }
  }
  // Drain all background work, then re-check the settled state.
  (void)dfs->TriggerRebalance();
  for (int i = 0; i < 2000 && !dfs->RebalanceDone(); ++i) {
    dfs->AdvanceTime(Seconds(10));
  }
  check(param.steps, "drained");
}

class StreamingStatsTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamingStatsTest, StreamingMatchesScanOracle) {
  RunDifferentialOracle(GetParam());
}

// 5 flavors x {healthy, faulty} x 1500 mutation steps of mixed ops,
// checked at ~260 checkpoints per case plus dense per-op checks early on.
INSTANTIATE_TEST_SUITE_P(
    AllFlavors, StreamingStatsTest,
    ::testing::Values(StreamCase{Flavor::kGluster, false, 51, 1500},
                      StreamCase{Flavor::kGluster, true, 52, 1500},
                      StreamCase{Flavor::kHdfs, false, 61, 1500},
                      StreamCase{Flavor::kHdfs, true, 62, 1500},
                      StreamCase{Flavor::kCeph, false, 71, 1500},
                      StreamCase{Flavor::kCeph, true, 72, 1500},
                      StreamCase{Flavor::kLeo, false, 81, 1500},
                      StreamCase{Flavor::kLeo, true, 82, 1500},
                      StreamCase{Flavor::kGeo, false, 91, 1500},
                      StreamCase{Flavor::kGeo, true, 92, 1500}),
    [](const ::testing::TestParamInfo<StreamCase>& param_info) {
      std::string name(FlavorName(param_info.param.flavor));
      name += param_info.param.with_faults ? "_faulty" : "_healthy";
      name += "_s" + std::to_string(param_info.param.seed);
      return name;
    });

// Production-scale differential oracle (DESIGN.md §15): at 1000 storage
// nodes the streaming path exercises the sparse per-group aggregates (dirty
// groups, per-group rate high-waters, lazy rollup) against the same O(N)
// full-scan ground truth, field-exact. Any divergence between the
// hierarchical rollup and the flat sums shows up here as an integer
// mismatch, not a tolerance failure.
TEST(StreamingStatsScaleTest, GeoThousandNodesMatchesScanOracle) {
  RunDifferentialOracle(StreamCase{Flavor::kGeo, true, 101, 600, 1000});
}

// Non-geo grouping at scale: the default contiguous-span PickLoadGroup takes
// the same sparse-aggregate paths with a very different group shape.
TEST(StreamingStatsScaleTest, HdfsThousandNodesMatchesScanOracle) {
  RunDifferentialOracle(StreamCase{Flavor::kHdfs, true, 102, 400, 1000});
}

}  // namespace
}  // namespace themis
