// Integration tests: full campaigns and experiment drivers at reduced
// virtual budgets.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/strategy_registry.h"
#include "src/harness/campaign.h"
#include "src/harness/experiments.h"
#include "src/harness/ground_truth.h"
#include "src/harness/report.h"

namespace themis {
namespace {

TEST(Campaign, RunsForTheVirtualBudget) {
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = 3;
  config.budget = Hours(2);
  Result<CampaignResult> run = Campaign(config).Run("Themis");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CampaignResult& result = *run;
  EXPECT_GT(result.testcases, 50);
  EXPECT_GT(result.total_ops, 500u);
  EXPECT_GT(result.final_coverage, 100u);
  EXPECT_EQ(result.strategy_name, "Themis");
  EXPECT_EQ(result.flavor, Flavor::kGluster);
}

TEST(Campaign, Deterministic) {
  CampaignConfig config;
  config.flavor = Flavor::kLeo;
  config.seed = 9;
  config.budget = Hours(1);
  CampaignResult a = Campaign(config).Run(StrategyKind::kThemis).take();
  CampaignResult b = Campaign(config).Run(StrategyKind::kThemis).take();
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.testcases, b.testcases);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.distinct_failures.size(), b.distinct_failures.size());
}

TEST(Campaign, CoverageTimelineIsMonotone) {
  CampaignConfig config;
  config.flavor = Flavor::kHdfs;
  config.seed = 4;
  config.budget = Hours(1);
  CampaignResult result = Campaign(config).Run(StrategyKind::kConcurrent).take();
  ASSERT_GT(result.coverage_timeline.size(), 10u);
  for (size_t i = 1; i < result.coverage_timeline.size(); ++i) {
    EXPECT_GE(result.coverage_timeline[i].second,
              result.coverage_timeline[i - 1].second);
    EXPECT_GT(result.coverage_timeline[i].first, result.coverage_timeline[i - 1].first);
  }
}

TEST(Campaign, HealthySystemYieldsNoFailures) {
  CampaignConfig config;
  config.flavor = Flavor::kCeph;
  config.seed = 5;
  config.budget = Hours(3);
  config.fault_set = FaultSet::kNone;
  CampaignResult result = Campaign(config).Run(StrategyKind::kThemis).take();
  EXPECT_EQ(result.DistinctTruePositives(), 0);
  EXPECT_EQ(result.false_positives, 0) << "healthy system must not be flagged";
}

TEST(Campaign, EveryRegisteredStrategyRuns) {
  std::vector<std::string> names = StrategyRegistry::Instance().Names();
  // The 6 strategies of the paper's evaluation all self-register.
  for (const char* expected :
       {"Themis", "Themis-", "Fix_req", "Fix_conf", "Alternate", "Concurrent"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the registry";
  }
  for (const std::string& name : names) {
    Result<CampaignResult> result =
        RunCampaign(name, Flavor::kGluster, 6, Minutes(30), FaultSet::kNewBugs);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_GT(result->total_ops, 50u) << name;
  }
}

TEST(Campaign, EnumShimMapsToRegistryNames) {
  for (StrategyKind kind :
       {StrategyKind::kThemis, StrategyKind::kThemisMinus, StrategyKind::kFixReq,
        StrategyKind::kFixConf, StrategyKind::kAlternate, StrategyKind::kConcurrent}) {
    EXPECT_TRUE(StrategyRegistry::Instance().Contains(StrategyKindName(kind)))
        << StrategyKindName(kind);
  }
}

TEST(Campaign, ValidateRejectsBadConfigs) {
  CampaignConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  CampaignConfig bad_budget = ok;
  bad_budget.budget = 0;
  EXPECT_EQ(bad_budget.Validate().code(), StatusCode::kInvalidArgument);

  CampaignConfig bad_nodes = ok;
  bad_nodes.storage_nodes = 0;
  EXPECT_EQ(bad_nodes.Validate().code(), StatusCode::kInvalidArgument);

  CampaignConfig bad_threshold = ok;
  bad_threshold.threshold_t = 0.0;
  EXPECT_EQ(bad_threshold.Validate().code(), StatusCode::kInvalidArgument);

  CampaignConfig bad_weights = ok;
  bad_weights.weights.computation = 0.0;
  bad_weights.weights.network = 0.0;
  bad_weights.weights.storage = 0.0;
  EXPECT_EQ(bad_weights.Validate().code(), StatusCode::kInvalidArgument);

  CampaignConfig healthy = ok;
  healthy.fault_set = FaultSet::kNone;
  EXPECT_TRUE(healthy.Validate().ok()) << "FP-study mode must validate";
}

TEST(Campaign, RunReportsErrorsInsteadOfCrashing) {
  CampaignConfig config;
  config.budget = -Hours(1);
  Result<CampaignResult> run = Campaign(config).Run("Themis");
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  CampaignConfig valid;
  valid.budget = Minutes(5);
  Result<CampaignResult> unknown = Campaign(valid).Run("NoSuchStrategy");
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(GroundTruth, TallyClassifiesAndDedups) {
  GroundTruthTally tally;
  FailureReport tp1;
  tp1.active_faults = {"bug-a"};
  tp1.confirmed_at = Minutes(10);
  FailureReport tp1_again;
  tp1_again.active_faults = {"bug-a"};
  tp1_again.confirmed_at = Minutes(5);  // earlier: must win
  FailureReport tp2;
  tp2.active_faults = {"bug-b", "bug-c"};
  tp2.confirmed_at = Minutes(20);
  FailureReport fp;  // no active faults
  TallyReports({tp1, tp1_again, tp2, fp}, tally);
  EXPECT_EQ(tally.true_positive_reports, 3);
  EXPECT_EQ(tally.false_positive_reports, 1);
  EXPECT_EQ(tally.distinct_failures.size(), 3u);
  EXPECT_EQ(tally.distinct_failures.at("bug-a"), Minutes(5));
}

TEST(Experiments, NewBugDriverSmoke) {
  ExperimentBudget budget;
  budget.campaign = Hours(1);
  budget.seeds = 1;
  NewBugFindings findings =
      RunNewBugExperiment({StrategyKind::kFixConf}, budget);
  EXPECT_EQ(findings.found.count(StrategyKind::kFixConf), 1u);
}

TEST(Experiments, ThresholdSweepShape) {
  ExperimentBudget budget;
  budget.campaign = Hours(2);
  budget.seeds = 1;
  std::vector<ThresholdSweepRow> rows = RunThresholdSweep({0.05, 0.30}, budget);
  ASSERT_EQ(rows.size(), 2u);
  // Low thresholds must produce at least as many FPs as high ones.
  EXPECT_GE(rows[0].false_positives, rows[1].false_positives);
}

TEST(Experiments, AccumulationTraceProducesSeries) {
  AccumulationTrace trace = RunAccumulationTrace(31, Hours(2));
  EXPECT_FALSE(trace.max_variance_series.empty());
  if (trace.failure_confirmed) {
    EXPECT_GT(trace.confirmed_at, 0);
    EXPECT_FALSE(trace.node_series.empty());
  }
}

TEST(Report, TextTableRendersAligned) {
  TextTable table({"A", "Long header"});
  table.AddRow({"x", "1"});
  table.AddRow({"long cell", "2"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| A         | Long header |"), std::string::npos);
  EXPECT_NE(out.find("| long cell | 2           |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Report, PercentHelper) {
  EXPECT_EQ(Percent(43, 53), "81%");
  EXPECT_EQ(Percent(0, 53), "0%");
  EXPECT_EQ(Percent(1, 0), "0%");
}

}  // namespace
}  // namespace themis
