// The bit-identical --jobs guarantee, extended to telemetry: the same
// CampaignMatrix run on 1, 2 and 8 worker threads must produce byte-identical
// campaign digests and identical telemetry event streams (ISSUE: telemetry
// must not perturb RNG streams).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/runner.h"
#include "src/harness/telemetry_export.h"
#include "src/telemetry/metrics.h"

namespace themis {
namespace {

CampaignMatrix TestMatrix() {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster, Flavor::kHdfs};
  matrix.strategies = {"Themis"};
  matrix.seeds = 2;
  matrix.matrix_seed = 20260806;
  matrix.base.budget = Hours(2);
  matrix.base.collect_telemetry = true;
  return matrix;
}

MatrixResult RunWithJobs(int jobs) {
  RunnerOptions options;
  options.jobs = jobs;
  return CampaignRunner(options).Run(TestMatrix());
}

// All event lines as sorted JSON strings — the order-insensitive multiset
// view of the matrix's telemetry.
std::vector<std::string> EventMultiset(const MatrixResult& result) {
  std::vector<std::string> lines;
  for (const JobResult& job : result.jobs) {
    for (const CampaignEvent& event : job.result.telemetry) {
      lines.push_back(event.ToJson(static_cast<int64_t>(job.job.index)));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

// The deterministic portion of the JSONL export: everything except the
// job_summary records (the only lines carrying wall/cpu time).
std::string DeterministicJsonl(const MatrixResult& result) {
  std::istringstream in(RenderTelemetryJsonl(result));
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"event\":\"job_summary\"") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

TEST(Determinism, DigestsIdenticalAcrossJobCounts) {
  MatrixResult serial = RunWithJobs(1);
  MatrixResult two = RunWithJobs(2);
  MatrixResult eight = RunWithJobs(8);
  ASSERT_EQ(serial.jobs.size(), 4u);
  ASSERT_EQ(two.jobs.size(), serial.jobs.size());
  ASSERT_EQ(eight.jobs.size(), serial.jobs.size());
  for (size_t i = 0; i < serial.jobs.size(); ++i) {
    ASSERT_TRUE(serial.jobs[i].status.ok()) << serial.jobs[i].status.ToString();
    ASSERT_TRUE(two.jobs[i].status.ok());
    ASSERT_TRUE(eight.jobs[i].status.ok());
    EXPECT_EQ(serial.jobs[i].result.Digest(), two.jobs[i].result.Digest())
        << "job " << i << " differs between --jobs 1 and --jobs 2";
    EXPECT_EQ(serial.jobs[i].result.Digest(), eight.jobs[i].result.Digest())
        << "job " << i << " differs between --jobs 1 and --jobs 8";
  }
}

TEST(Determinism, TelemetryEventMultisetsIdentical) {
  MatrixResult serial = RunWithJobs(1);
  MatrixResult eight = RunWithJobs(8);
  std::vector<std::string> serial_events = EventMultiset(serial);
  std::vector<std::string> parallel_events = EventMultiset(eight);
  if (kTelemetryEnabled) {
    ASSERT_FALSE(serial_events.empty());
  }
  EXPECT_EQ(serial_events, parallel_events);
  // Stronger than the multiset: the per-job streams are ordered identically
  // too, since each campaign records from a single thread in virtual time.
  for (size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].result.telemetry, eight.jobs[i].result.telemetry)
        << "job " << i;
  }
}

TEST(Determinism, JsonlExportByteIdenticalAcrossJobCounts) {
  std::string serial = DeterministicJsonl(RunWithJobs(1));
  std::string two = DeterministicJsonl(RunWithJobs(2));
  std::string eight = DeterministicJsonl(RunWithJobs(8));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(Determinism, RunJobsOrderDoesNotMatter) {
  // The digest must be a property of the job, not of submission order.
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(TestMatrix());
  std::reverse(jobs.begin(), jobs.end());
  RunnerOptions options;
  options.jobs = 4;
  MatrixResult reversed = CampaignRunner(options).RunJobs(jobs);
  MatrixResult canonical = RunWithJobs(1);
  ASSERT_EQ(reversed.jobs.size(), canonical.jobs.size());
  for (const JobResult& job : reversed.jobs) {
    const JobResult& match = canonical.jobs[job.job.index];
    ASSERT_EQ(match.job.index, job.job.index);
    EXPECT_EQ(job.result.Digest(), match.result.Digest());
  }
  // The JSONL export re-sorts into canonical order, so it is byte-identical
  // to the canonical run's export as well.
  EXPECT_EQ(DeterministicJsonl(reversed), DeterministicJsonl(canonical));
}

TEST(Determinism, CollectTelemetryFlagDoesNotChangeResults) {
  // Recording events must never touch the RNG: the digest over the
  // non-telemetry fields has to match a run with collection disabled.
  CampaignMatrix with = TestMatrix();
  CampaignMatrix without = TestMatrix();
  without.base.collect_telemetry = false;
  RunnerOptions options;
  options.jobs = 2;
  MatrixResult a = CampaignRunner(options).Run(with);
  MatrixResult b = CampaignRunner(options).Run(without);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    CampaignResult stripped = a.jobs[i].result;
    stripped.telemetry.clear();
    EXPECT_EQ(stripped.Digest(), b.jobs[i].result.Digest()) << "job " << i;
    EXPECT_TRUE(b.jobs[i].result.telemetry.empty());
  }
}

}  // namespace
}  // namespace themis
