// Tests for the metadata-consistency extension (§7 "more bug types"):
// namespace epochs, anti-entropy, the desync fault effect, and the checker.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/injector.h"
#include "src/monitor/metadata_checker.h"

namespace themis {
namespace {

Operation Create(const std::string& path, uint64_t size) {
  Operation op;
  op.kind = OpKind::kCreate;
  op.path = path;
  op.size = size;
  return op;
}

TEST(MetadataEpoch, MutationsAdvanceIt) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 81);
  EXPECT_EQ(dfs->namespace_epoch(), 0u);
  ASSERT_TRUE(dfs->Execute(Create("/a", kMiB)).status.ok());
  EXPECT_EQ(dfs->namespace_epoch(), 1u);
  Operation open;
  open.kind = OpKind::kOpen;
  open.path = "/a";
  ASSERT_TRUE(dfs->Execute(open).status.ok());
  EXPECT_EQ(dfs->namespace_epoch(), 1u) << "reads do not mutate the namespace";
  Operation del;
  del.kind = OpKind::kDelete;
  del.path = "/a";
  ASSERT_TRUE(dfs->Execute(del).status.ok());
  EXPECT_EQ(dfs->namespace_epoch(), 2u);
}

TEST(MetadataEpoch, FailedMutationsDoNotAdvance) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 82);
  Operation del;
  del.kind = OpKind::kDelete;
  del.path = "/missing";
  ASSERT_FALSE(dfs->Execute(del).status.ok());
  EXPECT_EQ(dfs->namespace_epoch(), 0u);
}

TEST(MetadataEpoch, HealthyReplicasStayInSync) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 83);
  for (int i = 0; i < 50; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kMiB));
  }
  for (const auto& [id, node] : dfs->meta_nodes()) {
    (void)id;
    if (node.Serving()) {
      EXPECT_EQ(node.synced_epoch, dfs->namespace_epoch());
    }
  }
}

TEST(MetadataChecker, SilentOnHealthySystem) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kLeo, 84);
  MetadataChecker checker;
  for (int i = 0; i < 100; ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kMiB));
    EXPECT_FALSE(checker.Check(*dfs).has_value());
  }
}

TEST(MetadataChecker, DetectsDesyncFault) {
  FaultSpec spec;
  spec.id = "mds-desync";
  spec.platform = Flavor::kCeph;
  spec.effect = EffectKind::kMetadataDesync;
  spec.trigger.min_window_ops = 1;
  spec.trigger.probability = 1.0;
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kCeph, 85);
  FaultInjector injector({spec}, 85);
  dfs->set_fault_hooks(&injector);

  MetadataChecker checker;
  std::optional<MetadataInconsistency> found;
  for (int i = 0; i < 200 && !found.has_value(); ++i) {
    (void)dfs->Execute(Create("/f" + std::to_string(i), kMiB));
    found = checker.Check(*dfs);
  }
  ASSERT_TRUE(found.has_value()) << "a frozen replica must diverge past the lag bound";
  EXPECT_GT(found->lag, 64u);
  // The flagged node is the fault's victim.
  ASSERT_TRUE(injector.AnyActive());
  bool victim_flagged = false;
  for (const FaultRuntime& fault : injector.faults()) {
    victim_flagged |= fault.active && fault.victim_node == found->node;
  }
  EXPECT_TRUE(victim_flagged);
}

TEST(MetadataChecker, RequiresPersistence) {
  MetadataCheckerConfig config;
  config.max_lag = 0;
  config.consecutive_needed = 3;
  MetadataChecker checker(config);
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 86);
  // Freeze one replica by hand via a desync fault with instant trigger.
  FaultSpec spec;
  spec.id = "freeze";
  spec.platform = Flavor::kHdfs;
  spec.effect = EffectKind::kMetadataDesync;
  spec.trigger.min_window_ops = 1;
  spec.trigger.probability = 1.0;
  FaultInjector injector({spec}, 86);
  dfs->set_fault_hooks(&injector);
  (void)dfs->Execute(Create("/a", kMiB));
  (void)dfs->Execute(Create("/b", kMiB));
  // Two checks below the persistence bar, third one reports.
  EXPECT_FALSE(checker.Check(*dfs).has_value());
  EXPECT_FALSE(checker.Check(*dfs).has_value());
  EXPECT_TRUE(checker.Check(*dfs).has_value());
}

TEST(MetadataEpoch, ResetClearsEpochs) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 87);
  (void)dfs->Execute(Create("/a", kMiB));
  ASSERT_GT(dfs->namespace_epoch(), 0u);
  dfs->ResetToInitial();
  EXPECT_EQ(dfs->namespace_epoch(), 0u);
  for (const auto& [id, node] : dfs->meta_nodes()) {
    (void)id;
    EXPECT_EQ(node.synced_epoch, 0u);
  }
}

}  // namespace
}  // namespace themis
