// Environment-fault input dimension (DESIGN.md §14): the fault-schedule
// grammar stays inside its operand bounds through generation, mutation and
// repair; schedules replay bit-identically for a fixed seed; the injector's
// effect counters match the armed schedule; and the env-gated registry bugs
// are reachable only when a campaign actually runs with env faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/mutator.h"
#include "src/core/replay.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/env_fault.h"
#include "src/faults/fault_registry.h"
#include "src/harness/campaign.h"

namespace themis {
namespace {

// Operand bounds of the env-fault grammar (src/dfs/operation.h).
testing::AssertionResult EnvOperandsInGrammar(const Operation& op) {
  switch (op.kind) {
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt:
      if (op.size < kEnvMinRatePermille || op.size > kEnvMaxRatePermille) {
        return testing::AssertionFailure()
               << OpKindName(op.kind) << " rate out of bounds: " << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvSlowDisk:
      if (op.node == kInvalidNode) {
        return testing::AssertionFailure() << "slow_disk without a node";
      }
      if (op.size < kEnvMinSlowFactorPercent ||
          op.size > kEnvMaxSlowFactorPercent) {
        return testing::AssertionFailure()
               << "slow_disk factor out of bounds: " << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvCrashNode:
      if (op.node == kInvalidNode) {
        return testing::AssertionFailure() << "crash_node without a node";
      }
      if (op.size < kEnvMinCrashDelaySeconds ||
          op.size > kEnvMaxCrashDelaySeconds) {
        return testing::AssertionFailure()
               << "crash_node restart delay out of bounds: " << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvClearFaults:
      return testing::AssertionSuccess();
    default:
      return testing::AssertionFailure()
             << OpKindName(op.kind) << " is not an env_fault operator";
  }
}

struct Fixture {
  std::unique_ptr<DfsCluster> cluster;
  InputModel model;
  Rng rng{0xe4fa17ULL};

  explicit Fixture(Flavor flavor = Flavor::kGluster)
      : cluster(MakeCluster(flavor, /*seed=*/7)) {
    model.SyncFromDfs(*cluster);
  }
};

TEST(EnvFaultGrammar, GeneratedEnvOpsStayInBoundsAndActuallyAppear) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);
  generator.set_env_fault_share(0.5);
  int env_ops = 0;
  for (int trial = 0; trial < 200; ++trial) {
    OpSeq seq = generator.Generate(fx.rng);
    for (const Operation& op : seq.ops) {
      if (!IsEnvFaultOp(op.kind)) {
        continue;
      }
      ++env_ops;
      EXPECT_TRUE(EnvOperandsInGrammar(op));
    }
  }
  // With a 0.5 share over ~200 sequences the schedule must be well exercised.
  EXPECT_GT(env_ops, 100);
}

TEST(EnvFaultGrammar, ZeroShareNeverDrawsEnvOps) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);  // default share 0.0
  for (int trial = 0; trial < 100; ++trial) {
    OpSeq seq = generator.Generate(fx.rng);
    for (const Operation& op : seq.ops) {
      EXPECT_FALSE(IsEnvFaultOp(op.kind)) << op.ToString();
    }
  }
}

TEST(EnvFaultGrammar, EnvClassDrawsCoverEveryOperator) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);
  std::vector<int> seen(kTotalOpKindCount, 0);
  for (int trial = 0; trial < 400; ++trial) {
    Operation op = generator.GenerateOpOfClass(OpClass::kEnvFault, fx.rng);
    ASSERT_TRUE(IsEnvFaultOp(op.kind)) << op.ToString();
    ASSERT_TRUE(EnvOperandsInGrammar(op));
    ++seen[static_cast<size_t>(op.kind)];
  }
  for (int i = kOpKindCount; i < kTotalOpKindCount; ++i) {
    EXPECT_GT(seen[static_cast<size_t>(i)], 0)
        << OpKindName(OpKindFromTotalIndex(i)) << " never drawn";
  }
}

TEST(EnvFaultGrammar, MutationKeepsEnvOpsInBounds) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);
  generator.set_env_fault_share(0.5);
  OpSeqMutator mutator(fx.model, generator);
  OpSeq seq = generator.Generate(fx.rng);
  int env_ops = 0;
  for (int round = 0; round < 300; ++round) {
    seq = mutator.Mutate(seq, fx.rng);
    for (const Operation& op : seq.ops) {
      if (!IsEnvFaultOp(op.kind)) {
        continue;
      }
      ++env_ops;
      ASSERT_TRUE(EnvOperandsInGrammar(op)) << "after mutation round " << round;
    }
  }
  EXPECT_GT(env_ops, 0);
}

TEST(EnvFaultGrammar, RepairClampsOutOfBoundsEnvOperands) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);
  OpSeqMutator mutator(fx.model, generator);
  OpSeq seq;
  Operation hot_rate;
  hot_rate.kind = OpKind::kEnvMsgLoss;
  hot_rate.size = 99999;  // beyond kEnvMaxRatePermille
  seq.ops.push_back(hot_rate);
  Operation cold_rate;
  cold_rate.kind = OpKind::kEnvMsgCorrupt;
  cold_rate.size = 0;  // below kEnvMinRatePermille
  seq.ops.push_back(cold_rate);
  Operation slow;
  slow.kind = OpKind::kEnvSlowDisk;
  slow.node = 999999;  // not in the model
  slow.size = 5;       // below kEnvMinSlowFactorPercent
  seq.ops.push_back(slow);
  Operation crash;
  crash.kind = OpKind::kEnvCrashNode;
  crash.node = 999999;
  crash.size = 7 * 24 * 3600;  // a week: beyond kEnvMaxCrashDelaySeconds
  seq.ops.push_back(crash);
  mutator.Repair(seq, fx.rng);
  EXPECT_EQ(seq.ops[0].size, kEnvMaxRatePermille);
  EXPECT_EQ(seq.ops[1].size, kEnvMinRatePermille);
  EXPECT_TRUE(fx.model.HasStorageNode(seq.ops[2].node));
  EXPECT_EQ(seq.ops[2].size, kEnvMinSlowFactorPercent);
  EXPECT_TRUE(fx.model.HasStorageNode(seq.ops[3].node));
  EXPECT_EQ(seq.ops[3].size, kEnvMaxCrashDelaySeconds);
  for (const Operation& op : seq.ops) {
    EXPECT_TRUE(EnvOperandsInGrammar(op));
  }
}

TEST(EnvFaultGrammar, ReproductionLogRoundTripsEveryEnvOperator) {
  Fixture fx;
  OpSeq seq;
  for (int i = kOpKindCount; i < kTotalOpKindCount; ++i) {
    OpKind kind = OpKindFromTotalIndex(i);
    Operation op;
    op.kind = kind;
    switch (kind) {
      case OpKind::kEnvMsgLoss:
      case OpKind::kEnvMsgReorder:
      case OpKind::kEnvMsgDuplicate:
      case OpKind::kEnvMsgCorrupt:
        op.size = 250;
        break;
      case OpKind::kEnvSlowDisk:
        op.node = fx.cluster->ListStorageNodes().front();
        op.size = 400;
        break;
      case OpKind::kEnvCrashNode:
        op.node = fx.cluster->ListMetaNodes().front();
        op.size = 120;
        break;
      default:
        break;  // kEnvClearFaults: no operands
    }
    seq.ops.push_back(op);
  }
  Result<OpSeq> parsed = ParseReproductionLog(FormatReproductionLog(seq));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->ops.size(), seq.ops.size());
  EXPECT_EQ(FormatReproductionLog(*parsed), FormatReproductionLog(seq));
  for (size_t i = 0; i < seq.ops.size(); ++i) {
    EXPECT_EQ(parsed->ops[i].kind, seq.ops[i].kind);
    EXPECT_EQ(parsed->ops[i].node, seq.ops[i].node);
    EXPECT_EQ(parsed->ops[i].size, seq.ops[i].size);
  }
}

// ---------------------------------------------------------------------------
// Injector semantics: the armed schedule drives the effect counters.
// ---------------------------------------------------------------------------

// Deterministic heavy load followed by a capacity squeeze on one brick:
// the squeezed brick ends up far above fleet utilization, so the next
// rebalance round has real chunk moves to push through the transport.
void PopulateAndSkew(DfsCluster& dfs) {
  for (int i = 0; i < 80; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/load-" + std::to_string(i);
    op.size = 6 * kGiB;
    dfs.Execute(op);
  }
  Operation shrink;
  shrink.kind = OpKind::kReduceVolume;
  shrink.brick = dfs.bricks().begin()->first;
  shrink.size = 0;  // default delta: shrink by a quarter
  for (int i = 0; i < 3; ++i) {
    dfs.Execute(shrink);
  }
}

Operation EnvOp(OpKind kind, NodeId node, uint64_t size) {
  Operation op;
  op.kind = kind;
  op.node = node;
  op.size = size;
  return op;
}

TEST(EnvFaultInjector, EnvOpsAreUnavailableWithoutAnInjector) {
  Fixture fx;
  OpResult result =
      fx.cluster->Execute(EnvOp(OpKind::kEnvMsgLoss, kInvalidNode, 100));
  EXPECT_FALSE(result.status.ok());
}

struct FaultedRunOutcome {
  EnvFaultStats stats;
  double imbalance = 0.0;
  uint64_t ops = 0;

  bool operator==(const FaultedRunOutcome&) const = default;
};

// One faulted run: populate, arm full-tilt message loss, grow the topology
// and rebalance to completion under the armed schedule.
FaultedRunOutcome RunMessageLossScenario(uint64_t cluster_seed,
                                         uint64_t injector_seed) {
  std::unique_ptr<DfsCluster> cluster = MakeCluster(Flavor::kGluster, cluster_seed);
  EnvFaultInjector injector(injector_seed);
  cluster->set_env_faults(&injector);
  PopulateAndSkew(*cluster);
  EXPECT_TRUE(cluster
                  ->Execute(EnvOp(OpKind::kEnvMsgLoss, kInvalidNode,
                                  kEnvMaxRatePermille))
                  .status.ok());
  cluster->TriggerRebalance();
  EXPECT_FALSE(cluster->RebalanceDone()) << "squeeze produced no moves";
  for (int i = 0; i < 600 && !cluster->RebalanceDone(); ++i) {
    cluster->AdvanceTime(Seconds(10));
  }
  EXPECT_TRUE(cluster->RebalanceDone());
  return FaultedRunOutcome{injector.stats(), cluster->StorageImbalance(),
                           cluster->total_ops_executed()};
}

TEST(EnvFaultInjector, MessageLossStatsMatchTheArmedSchedule) {
  FaultedRunOutcome outcome = RunMessageLossScenario(42, 7);
  // A 50% loss rate over a real migration queue must drop messages, and the
  // less severe verdicts never fire because loss wins the severity order.
  EXPECT_GT(outcome.stats.messages_dropped, 0u);
  EXPECT_EQ(outcome.stats.messages_reordered, 0u);
  EXPECT_EQ(outcome.stats.messages_duplicated, 0u);
  EXPECT_EQ(outcome.stats.messages_corrupted, 0u);
  EXPECT_EQ(outcome.stats.node_crashes, 0u);
}

TEST(EnvFaultInjector, FaultedRunsReplayBitIdentically) {
  FaultedRunOutcome first = RunMessageLossScenario(42, 7);
  FaultedRunOutcome second = RunMessageLossScenario(42, 7);
  EXPECT_EQ(first, second);
  // A different injector seed draws a different verdict sequence; the drop
  // *count* may coincide, but the run as a whole should not (the dropped
  // messages land elsewhere in the queue).
  FaultedRunOutcome other = RunMessageLossScenario(42, 8);
  EXPECT_NE(first.stats.messages_dropped, 0u);
  EXPECT_NE(other.stats.messages_dropped, 0u);
}

TEST(EnvFaultInjector, GeneratedScheduleReplaysIdenticallyAcrossClusters) {
  Fixture fx;
  OpSeqGenerator generator(fx.model);
  generator.set_env_fault_share(0.4);
  std::vector<OpSeq> seqs;
  for (int i = 0; i < 5; ++i) {
    seqs.push_back(generator.Generate(fx.rng, /*len=*/8));
  }
  auto run = [&seqs]() {
    std::unique_ptr<DfsCluster> cluster = MakeCluster(Flavor::kLeo, /*seed=*/99);
    EnvFaultInjector injector(/*seed=*/31337);
    cluster->set_env_faults(&injector);
    uint64_t ok = 0;
    for (const OpSeq& seq : seqs) {
      ReplayOutcome outcome = ReplayLog(*cluster, seq, /*repetitions=*/2);
      ok += outcome.ops_ok;
    }
    for (int i = 0; i < 200 && !(cluster->RebalanceDone() &&
                                 !cluster->EnvRecoveryPending());
         ++i) {
      cluster->AdvanceTime(Seconds(30));
    }
    return std::tuple(ok, cluster->StorageImbalance(),
                      cluster->total_ops_executed(), injector.stats());
  };
  EXPECT_EQ(run(), run());
}

TEST(EnvFaultInjector, SlowDiskWindowExpiresAfterItsHour) {
  Fixture fx;
  EnvFaultInjector injector(/*seed=*/5);
  fx.cluster->set_env_faults(&injector);
  NodeId node = fx.cluster->ListStorageNodes().front();
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvSlowDisk, node, 400))
                  .status.ok());
  EXPECT_EQ(injector.active_slow_disks(), 1u);
  EXPECT_EQ(injector.stats().slow_disk_windows, 1u);
  EXPECT_DOUBLE_EQ(injector.DiskSlowdown(*fx.cluster, node), 4.0);
  // Other nodes run at full speed.
  EXPECT_DOUBLE_EQ(injector.DiskSlowdown(*fx.cluster,
                                         fx.cluster->ListStorageNodes().back()),
                   1.0);
  fx.cluster->AdvanceTime(kEnvSlowDiskWindow + Seconds(1));
  EXPECT_DOUBLE_EQ(injector.DiskSlowdown(*fx.cluster, node), 1.0);
  EXPECT_EQ(injector.active_slow_disks(), 0u);
}

TEST(EnvFaultInjector, CrashSchedulesARestartAndTheBalancerRecovers) {
  Fixture fx;
  EnvFaultInjector injector(/*seed=*/5);
  fx.cluster->set_env_faults(&injector);
  NodeId meta = fx.cluster->ListMetaNodes().front();
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvCrashNode, meta, 120))
                  .status.ok());
  EXPECT_TRUE(fx.cluster->balancer_crashed());
  EXPECT_TRUE(fx.cluster->EnvRecoveryPending());
  EXPECT_EQ(injector.pending_restarts(), 1u);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  // The balancer is down: a crash mid-rebalance halts, it does not limp on.
  EXPECT_FALSE(fx.cluster->TriggerRebalance().ok());
  // A second crash of the same node is rejected, not double-counted.
  EXPECT_FALSE(fx.cluster->Execute(EnvOp(OpKind::kEnvCrashNode, meta, 120))
                   .status.ok());
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  fx.cluster->AdvanceTime(Seconds(130));
  EXPECT_FALSE(fx.cluster->balancer_crashed());
  EXPECT_FALSE(fx.cluster->EnvRecoveryPending());
  EXPECT_EQ(injector.pending_restarts(), 0u);
  EXPECT_EQ(injector.stats().node_restarts, 1u);
  EXPECT_TRUE(fx.cluster->TriggerRebalance().ok());
}

TEST(EnvFaultInjector, ClearFaultsDropsRatesButKeepsTheRestartSchedule) {
  Fixture fx;
  EnvFaultInjector injector(/*seed=*/5);
  fx.cluster->set_env_faults(&injector);
  NodeId storage = fx.cluster->ListStorageNodes().front();
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvMsgLoss, kInvalidNode, 200))
                  .status.ok());
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvSlowDisk, storage, 300))
                  .status.ok());
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvCrashNode, storage, 600))
                  .status.ok());
  ASSERT_TRUE(fx.cluster
                  ->Execute(EnvOp(OpKind::kEnvClearFaults, kInvalidNode, 0))
                  .status.ok());
  EXPECT_EQ(injector.msg_loss_permille(), 0u);
  EXPECT_EQ(injector.active_slow_disks(), 0u);
  // clear_faults heals the environment going forward; it cannot un-crash a
  // node, so the scheduled recovery still happens.
  EXPECT_EQ(injector.pending_restarts(), 1u);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  fx.cluster->AdvanceTime(Seconds(700));
  EXPECT_EQ(injector.stats().node_restarts, 1u);
  EXPECT_FALSE(fx.cluster->EnvRecoveryPending());
}

TEST(EnvFaultInjector, StateRoundTripsThroughASnapshot) {
  Fixture fx;
  EnvFaultInjector injector(/*seed=*/5);
  fx.cluster->set_env_faults(&injector);
  NodeId storage = fx.cluster->ListStorageNodes().front();
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvMsgLoss, kInvalidNode, 150))
                  .status.ok());
  ASSERT_TRUE(fx.cluster
                  ->Execute(EnvOp(OpKind::kEnvMsgCorrupt, kInvalidNode, 42))
                  .status.ok());
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvSlowDisk, storage, 250))
                  .status.ok());
  ASSERT_TRUE(fx.cluster->Execute(EnvOp(OpKind::kEnvCrashNode, storage, 900))
                  .status.ok());
  SnapshotWriter writer;
  injector.SaveState(writer);
  EnvFaultInjector restored(/*seed=*/999);  // seed overwritten by the record
  SnapshotReader reader(writer.buffer());
  Status status = restored.RestoreState(reader);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(restored.msg_loss_permille(), injector.msg_loss_permille());
  EXPECT_EQ(restored.msg_corrupt_permille(), injector.msg_corrupt_permille());
  EXPECT_EQ(restored.msg_reorder_permille(), 0u);
  EXPECT_EQ(restored.active_slow_disks(), injector.active_slow_disks());
  EXPECT_EQ(restored.pending_restarts(), injector.pending_restarts());
  EXPECT_EQ(restored.stats(), injector.stats());
}

// ---------------------------------------------------------------------------
// Campaign integration: determinism and env-gated bug reachability.
// ---------------------------------------------------------------------------

CampaignConfig EnvCampaignConfig(uint64_t seed, bool env_faults) {
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = seed;
  config.budget = Hours(2);
  config.env_faults = env_faults;
  return config;
}

bool HasEnvGatedEntry(
    const std::map<std::string, std::pair<uint64_t, int>>& trigger_stats,
    int min_triggers) {
  for (const auto& [id, stat] : trigger_stats) {
    if (id.rfind("Bug#ENV-", 0) == 0 && stat.second >= min_triggers) {
      return true;
    }
  }
  return false;
}

TEST(EnvFaultCampaign, FaultedCampaignsAreDeterministic) {
  Result<CampaignResult> first = Campaign(EnvCampaignConfig(77, true)).Run("Themis");
  Result<CampaignResult> second = Campaign(EnvCampaignConfig(77, true)).Run("Themis");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->Digest(), second->Digest());
  EXPECT_EQ(first->total_ops, second->total_ops);
  // The fault dimension changes the run: same seed without env faults takes a
  // different trajectory.
  Result<CampaignResult> fault_free =
      Campaign(EnvCampaignConfig(77, false)).Run("Themis");
  ASSERT_TRUE(fault_free.ok()) << fault_free.status().ToString();
  EXPECT_NE(first->Digest(), fault_free->Digest());
}

TEST(EnvFaultCampaign, EveryEnvRegistryBugIsFaultGated) {
  std::vector<FaultSpec> specs = EnvFaultBugRegistry();
  ASSERT_GE(specs.size(), 4u);
  for (const FaultSpec& spec : specs) {
    EXPECT_TRUE(spec.trigger.needs_env_faults) << spec.id;
    EXPECT_EQ(spec.id.rfind("Bug#ENV-", 0), 0u) << spec.id;
    // Each env bug demands a concrete fault schedule, not just "any env op".
    bool names_env_kind = false;
    for (OpKind kind : spec.trigger.required_kinds) {
      names_env_kind = names_env_kind || IsEnvFaultOp(kind);
    }
    EXPECT_TRUE(names_env_kind) << spec.id;
  }
}

TEST(EnvFaultCampaign, EnvGatedBugsTriggerOnlyUnderAFaultSchedule) {
  // Fault-free config: the env registry is not even loaded, so no env-gated
  // fault can appear in the trigger bookkeeping — this is the "provably
  // cannot trigger" half of the reachability experiment.
  Result<CampaignResult> fault_free =
      Campaign(EnvCampaignConfig(1234, false)).Run("Themis");
  ASSERT_TRUE(fault_free.ok()) << fault_free.status().ToString();
  EXPECT_FALSE(HasEnvGatedEntry(fault_free->trigger_stats, /*min_triggers=*/0));
  for (const auto& [id, when] : fault_free->distinct_failures) {
    EXPECT_NE(id.rfind("Bug#ENV-", 0), 0u) << id;
  }
  // Faulted config: the schedule reaches the env-gated bug AND the detector
  // confirms it as a distinct failure — full reproduction, not just
  // trigger-predicate satisfaction.
  Result<CampaignResult> faulted =
      Campaign(EnvCampaignConfig(1234, true)).Run("Themis");
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_TRUE(HasEnvGatedEntry(faulted->trigger_stats, /*min_triggers=*/1));
  EXPECT_TRUE(faulted->Found("Bug#ENV-G1"));
}

}  // namespace
}  // namespace themis
