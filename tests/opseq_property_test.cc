// Property-based invariants over the OpSeq pipeline: generated and mutated
// sequences always stay inside the Fig. 7 grammar (every operator carries its
// required operands), mutation respects the [1, max_len] length bounds, and
// replay is a pure function of (cluster seed, log).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/mutator.h"
#include "src/core/replay.h"
#include "src/dfs/flavors/factory.h"

namespace themis {
namespace {

constexpr int kMaxLen = 8;
constexpr int kTrials = 50;

// Fig. 7 well-formedness: "the number and contents of operands opd are
// determined by the operator opt". The model is synced from a live cluster,
// so node/brick references must resolve to real ids.
testing::AssertionResult GrammarValid(const Operation& op) {
  auto path_ok = [](const std::string& path) {
    return !path.empty() && path[0] == '/';
  };
  switch (op.kind) {
    case OpKind::kCreate:
    case OpKind::kDelete:
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kOpen:
    case OpKind::kTruncateOverwrite:
    case OpKind::kMkdir:
    case OpKind::kRmdir:
      if (!path_ok(op.path)) {
        return testing::AssertionFailure()
               << OpKindName(op.kind) << " without a fileName operand: "
               << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kRename:
      if (!path_ok(op.path) || !path_ok(op.path2)) {
        return testing::AssertionFailure()
               << "rename needs two fileName operands: " << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kAddMetaNode:
    case OpKind::kAddStorageNode:
      return testing::AssertionSuccess();  // the system assigns the id
    case OpKind::kRemoveMetaNode:
    case OpKind::kRemoveStorageNode:
      if (op.node == kInvalidNode) {
        return testing::AssertionFailure()
               << OpKindName(op.kind) << " without a nodeId operand";
      }
      return testing::AssertionSuccess();
    case OpKind::kAddVolume:
      return testing::AssertionSuccess();  // target node is optional
    case OpKind::kRemoveVolume:
    case OpKind::kExpandVolume:
    case OpKind::kReduceVolume:
      if (op.brick == kInvalidBrick) {
        return testing::AssertionFailure()
               << OpKindName(op.kind) << " without a brick operand";
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt:
      if (op.size < kEnvMinRatePermille || op.size > kEnvMaxRatePermille) {
        return testing::AssertionFailure()
               << OpKindName(op.kind) << " rate outside ["
               << kEnvMinRatePermille << ", " << kEnvMaxRatePermille
               << "] permille: " << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvSlowDisk:
      if (op.node == kInvalidNode) {
        return testing::AssertionFailure() << "slow_disk without a nodeId operand";
      }
      if (op.size < kEnvMinSlowFactorPercent || op.size > kEnvMaxSlowFactorPercent) {
        return testing::AssertionFailure()
               << "slow_disk factor outside [" << kEnvMinSlowFactorPercent
               << ", " << kEnvMaxSlowFactorPercent << "] percent: "
               << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvCrashNode:
      if (op.node == kInvalidNode) {
        return testing::AssertionFailure() << "crash_node without a nodeId operand";
      }
      if (op.size < kEnvMinCrashDelaySeconds || op.size > kEnvMaxCrashDelaySeconds) {
        return testing::AssertionFailure()
               << "crash_node restart delay outside [" << kEnvMinCrashDelaySeconds
               << ", " << kEnvMaxCrashDelaySeconds << "] seconds: "
               << op.ToString();
      }
      return testing::AssertionSuccess();
    case OpKind::kEnvClearFaults:
      return testing::AssertionSuccess();  // no operands
  }
  return testing::AssertionFailure() << "unknown operator";
}

testing::AssertionResult GrammarValid(const OpSeq& seq) {
  if (seq.ops.empty()) {
    return testing::AssertionFailure() << "testcase needs operation+ (empty)";
  }
  for (const Operation& op : seq.ops) {
    testing::AssertionResult result = GrammarValid(op);
    if (!result) {
      return result;
    }
  }
  return testing::AssertionSuccess();
}

struct Fixture {
  std::unique_ptr<DfsCluster> cluster;
  InputModel model;
  Rng rng{0xfeedULL};

  Fixture() : cluster(MakeCluster(Flavor::kGluster, /*seed=*/7)) {
    model.SyncFromDfs(*cluster);
  }
};

TEST(OpSeqProperty, GeneratedSequencesStayInGrammar) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  for (int trial = 0; trial < kTrials; ++trial) {
    OpSeq seq = generator.Generate(fx.rng);
    EXPECT_TRUE(GrammarValid(seq));
    EXPECT_GE(seq.size(), 1u);
    EXPECT_LE(seq.size(), static_cast<size_t>(kMaxLen));
  }
}

TEST(OpSeqProperty, MutationPreservesGrammarAndLengthBounds) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  OpSeqMutator mutator(fx.model, generator, kMaxLen);
  OpSeq seq = generator.Generate(fx.rng);
  for (int trial = 0; trial < kTrials * 4; ++trial) {
    seq = mutator.Mutate(seq, fx.rng);
    ASSERT_TRUE(GrammarValid(seq)) << "after mutation round " << trial;
    ASSERT_GE(seq.size(), 1u);
    ASSERT_LE(seq.size(), static_cast<size_t>(kMaxLen));
  }
}

TEST(OpSeqProperty, LightMutationChangesLengthByAtMostOne) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  OpSeqMutator mutator(fx.model, generator, kMaxLen);
  for (int trial = 0; trial < kTrials; ++trial) {
    OpSeq seed = generator.Generate(fx.rng);
    OpSeq out = mutator.MutateLight(seed, fx.rng);
    EXPECT_TRUE(GrammarValid(out));
    EXPECT_LE(out.size(), seed.size() + 1);
    EXPECT_GE(out.size() + 1, seed.size());
    EXPECT_GE(out.size(), 1u);
  }
}

TEST(OpSeqProperty, RepairRebindsDeadNodeAndBrickReferences) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  OpSeqMutator mutator(fx.model, generator, kMaxLen);
  OpSeq seq;
  Operation dead_node;
  dead_node.kind = OpKind::kRemoveStorageNode;
  dead_node.node = 999999;  // not in the model
  seq.ops.push_back(dead_node);
  Operation dead_brick;
  dead_brick.kind = OpKind::kExpandVolume;
  dead_brick.brick = 999999;
  dead_brick.size = 1;
  seq.ops.push_back(dead_brick);
  mutator.Repair(seq, fx.rng);
  EXPECT_TRUE(fx.model.HasStorageNode(seq.ops[0].node));
  EXPECT_TRUE(fx.model.HasBrick(seq.ops[1].brick));
}

TEST(OpSeqProperty, ReproductionLogRoundTrips) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  for (int trial = 0; trial < kTrials; ++trial) {
    OpSeq seq = generator.Generate(fx.rng);
    Result<OpSeq> parsed = ParseReproductionLog(FormatReproductionLog(seq));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(FormatReproductionLog(*parsed), FormatReproductionLog(seq));
  }
}

TEST(OpSeqProperty, ReplayReproducesClusterLoadVector) {
  Fixture fx;
  OpSeqGenerator generator(fx.model, kMaxLen);
  for (int trial = 0; trial < 10; ++trial) {
    OpSeq seq = generator.Generate(fx.rng);
    std::unique_ptr<DfsCluster> first = MakeCluster(Flavor::kGluster, /*seed=*/42);
    std::unique_ptr<DfsCluster> second = MakeCluster(Flavor::kGluster, /*seed=*/42);
    ReplayOutcome outcome_a = ReplayLog(*first, seq, /*repetitions=*/2);
    ReplayOutcome outcome_b = ReplayLog(*second, seq, /*repetitions=*/2);
    EXPECT_EQ(outcome_a.ops_executed, outcome_b.ops_executed);
    EXPECT_EQ(outcome_a.ops_ok, outcome_b.ops_ok);
    EXPECT_DOUBLE_EQ(outcome_a.residual_imbalance, outcome_b.residual_imbalance);
    EXPECT_EQ(outcome_a.any_node_crashed, outcome_b.any_node_crashed);
    std::vector<LoadSample> load_a = first->SampleLoad();
    std::vector<LoadSample> load_b = second->SampleLoad();
    ASSERT_EQ(load_a.size(), load_b.size());
    for (size_t i = 0; i < load_a.size(); ++i) {
      EXPECT_EQ(load_a[i].node, load_b[i].node);
      EXPECT_EQ(load_a[i].used_bytes, load_b[i].used_bytes);
      EXPECT_EQ(load_a[i].capacity_bytes, load_b[i].capacity_bytes);
      EXPECT_EQ(load_a[i].requests, load_b[i].requests);
    }
  }
}

}  // namespace
}  // namespace themis
