// Operation semantics of the DFS cluster engine, exercised across all four
// flavors (parameterized) plus flavor-specific behaviors.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/dfs/flavors/ceph_like.h"
#include "src/dfs/flavors/factory.h"
#include "src/dfs/flavors/gluster_like.h"
#include "src/dfs/flavors/hdfs_like.h"
#include "src/dfs/flavors/leo_like.h"

namespace themis {
namespace {

Operation MakeCreate(const std::string& path, uint64_t size) {
  Operation op;
  op.kind = OpKind::kCreate;
  op.path = path;
  op.size = size;
  return op;
}

Operation MakeOp(OpKind kind, const std::string& path = "", uint64_t size = 0) {
  Operation op;
  op.kind = kind;
  op.path = path;
  op.size = size;
  return op;
}

class ClusterOpsTest : public ::testing::TestWithParam<Flavor> {
 protected:
  void SetUp() override { dfs_ = MakeCluster(GetParam(), 99); }
  std::unique_ptr<DfsCluster> dfs_;
};

TEST_P(ClusterOpsTest, CreateStoresReplicatedData) {
  OpResult result = dfs_->Execute(MakeCreate("/f", 10 * kGiB));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(dfs_->tree().file_count(), 1u);
  // Replication doubles the stored bytes.
  EXPECT_EQ(dfs_->TotalUsedBytes(), 2 * 10 * kGiB);
  // Chunks respect the stripe unit.
  const FileLayout& layout = dfs_->file_layouts().begin()->second;
  for (const ChunkPlacement& chunk : layout.chunks) {
    EXPECT_LE(chunk.bytes, dfs_->config().chunk_size);
    EXPECT_EQ(chunk.replicas.size(), 2u);
  }
}

TEST_P(ClusterOpsTest, CreateDuplicateFails) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kMiB)).status.ok());
  EXPECT_EQ(dfs_->Execute(MakeCreate("/f", kMiB)).status.code(),
            StatusCode::kAlreadyExists);
}

TEST_P(ClusterOpsTest, CreateBeyondCapacityFails) {
  uint64_t huge = dfs_->TotalCapacityBytes();  // x2 replication cannot fit
  OpResult result = dfs_->Execute(MakeCreate("/big", huge));
  EXPECT_EQ(result.status.code(), StatusCode::kOutOfSpace);
  // Rollback: no data may remain allocated (gluster may leave metadata-sized
  // linkfiles on full hashed bricks — that is real DHT behavior).
  EXPECT_LE(dfs_->TotalUsedBytes(), 64 * kKiB);
  EXPECT_EQ(dfs_->tree().file_count(), 0u);
}

TEST_P(ClusterOpsTest, DeleteFreesBytes) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kDelete, "/f")).status.ok());
  EXPECT_EQ(dfs_->TotalUsedBytes(), 0u);
  EXPECT_EQ(dfs_->Execute(MakeOp(OpKind::kDelete, "/f")).status.code(),
            StatusCode::kNotFound);
}

TEST_P(ClusterOpsTest, AppendGrowsFile) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  OpResult result = dfs_->Execute(MakeOp(OpKind::kAppend, "/f", 3 * kGiB));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(dfs_->tree().Find("/f")->size, 4 * kGiB);
  EXPECT_EQ(dfs_->TotalUsedBytes(), 2 * 4 * kGiB);
}

TEST_P(ClusterOpsTest, OverwriteReplacesContents) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", 4 * kGiB)).status.ok());
  OpResult result = dfs_->Execute(MakeOp(OpKind::kOverwrite, "/f", kGiB));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(dfs_->tree().Find("/f")->size, kGiB);
  EXPECT_EQ(dfs_->TotalUsedBytes(), 2 * kGiB);
}

TEST_P(ClusterOpsTest, TruncateOverwriteBehavesLikeOverwrite) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", 2 * kGiB)).status.ok());
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kTruncateOverwrite, "/f", 512 * kMiB))
                  .status.ok());
  EXPECT_EQ(dfs_->tree().Find("/f")->size, 512 * kMiB);
}

TEST_P(ClusterOpsTest, OpenReadsAndCountsIo) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  uint64_t reads_before = 0;
  for (const LoadSample& sample : dfs_->SampleLoad()) {
    reads_before += sample.read_ios;
  }
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kOpen, "/f")).status.ok());
  uint64_t reads_after = 0;
  for (const LoadSample& sample : dfs_->SampleLoad()) {
    reads_after += sample.read_ios;
  }
  EXPECT_GT(reads_after, reads_before);
}

TEST_P(ClusterOpsTest, RenamePreservesData) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  Operation rename = MakeOp(OpKind::kRename, "/f");
  rename.path2 = "/g";
  ASSERT_TRUE(dfs_->Execute(rename).status.ok());
  EXPECT_TRUE(dfs_->tree().IsFile("/g"));
  // Allow for a gluster DHT linkfile on the new hashed brick.
  EXPECT_GE(dfs_->TotalUsedBytes(), 2 * kGiB);
  EXPECT_LE(dfs_->TotalUsedBytes(), 2 * kGiB + 64 * kKiB);
}

TEST_P(ClusterOpsTest, AddAndRemoveStorageNode) {
  size_t before = dfs_->ListStorageNodes().size();
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kAddStorageNode)).status.ok());
  EXPECT_EQ(dfs_->ListStorageNodes().size(), before + 1);

  Operation remove = MakeOp(OpKind::kRemoveStorageNode);
  remove.node = dfs_->ListStorageNodes().back();
  ASSERT_TRUE(dfs_->Execute(remove).status.ok());
  EXPECT_EQ(dfs_->ListStorageNodes().size(), before);
}

TEST_P(ClusterOpsTest, RemoveStorageNodeRespectsMinimum) {
  // Keep removing until the system refuses; the refusal must leave at least
  // the configured node minimum AND enough bricks for replica-2 leveling.
  StatusCode last = StatusCode::kOk;
  for (int i = 0; i < 32 && last == StatusCode::kOk; ++i) {
    Operation remove = MakeOp(OpKind::kRemoveStorageNode);
    remove.node = dfs_->ListStorageNodes().back();
    last = dfs_->Execute(remove).status.code();
  }
  EXPECT_EQ(last, StatusCode::kFailedPrecondition);
  EXPECT_GE(static_cast<int>(dfs_->ListStorageNodes().size()),
            dfs_->config().min_storage_nodes);
  EXPECT_GE(dfs_->ListBricks().size(), 4u);
}

TEST_P(ClusterOpsTest, RemovedNodeDataIsReRecovered) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", 8 * kGiB)).status.ok());
  Operation remove = MakeOp(OpKind::kRemoveStorageNode);
  remove.node = dfs_->file_layouts().begin()->second.chunks.front().replicas.front();
  // The replica id is a brick; resolve its node.
  remove.node = dfs_->FindBrick(static_cast<BrickId>(remove.node))->node;
  ASSERT_TRUE(dfs_->Execute(remove).status.ok());
  // Drain recovery and verify every chunk still has 2 live replicas.
  for (int i = 0; i < 1000 && !dfs_->RebalanceDone(); ++i) {
    dfs_->AdvanceTime(Seconds(10));
  }
  for (const auto& [file, layout] : dfs_->file_layouts()) {
    (void)file;
    for (const ChunkPlacement& chunk : layout.chunks) {
      int live = 0;
      for (BrickId b : chunk.replicas) {
        const Brick* brick = dfs_->FindBrick(b);
        const StorageNode* node =
            brick != nullptr ? dfs_->FindStorageNode(brick->node) : nullptr;
        if (brick != nullptr && brick->online && node != nullptr && node->Serving()) {
          ++live;
        }
      }
      EXPECT_EQ(live, 2) << "chunk lost redundancy after node removal";
    }
  }
  EXPECT_EQ(dfs_->lost_bytes(), 0u);
}

TEST_P(ClusterOpsTest, AddRemoveMetaNode) {
  size_t before = dfs_->ListMetaNodes().size();
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kAddMetaNode)).status.ok());
  EXPECT_EQ(dfs_->ListMetaNodes().size(), before + 1);
  Operation remove = MakeOp(OpKind::kRemoveMetaNode);
  remove.node = dfs_->ListMetaNodes().back();
  ASSERT_TRUE(dfs_->Execute(remove).status.ok());
  EXPECT_EQ(dfs_->ListMetaNodes().size(), before);
}

TEST_P(ClusterOpsTest, VolumeLifecycle) {
  size_t bricks_before = dfs_->ListBricks().size();
  Operation add = MakeOp(OpKind::kAddVolume);
  add.size = 200 * kGiB;
  ASSERT_TRUE(dfs_->Execute(add).status.ok());
  ASSERT_EQ(dfs_->ListBricks().size(), bricks_before + 1);
  BrickId brick = dfs_->ListBricks().back();

  Operation expand = MakeOp(OpKind::kExpandVolume);
  expand.brick = brick;
  expand.size = 100 * kGiB;
  uint64_t cap_before = dfs_->FindBrick(brick)->capacity_bytes;
  ASSERT_TRUE(dfs_->Execute(expand).status.ok());
  EXPECT_EQ(dfs_->FindBrick(brick)->capacity_bytes, cap_before + 100 * kGiB);

  Operation reduce = MakeOp(OpKind::kReduceVolume);
  reduce.brick = brick;
  reduce.size = 50 * kGiB;
  ASSERT_TRUE(dfs_->Execute(reduce).status.ok());
  EXPECT_EQ(dfs_->FindBrick(brick)->capacity_bytes, cap_before + 50 * kGiB);

  Operation remove = MakeOp(OpKind::kRemoveVolume);
  remove.brick = brick;
  ASSERT_TRUE(dfs_->Execute(remove).status.ok());
  // The brick drains and eventually disappears from the serving list.
  for (int i = 0; i < 200 && !dfs_->RebalanceDone(); ++i) {
    dfs_->AdvanceTime(Seconds(10));
  }
  for (BrickId id : dfs_->ListBricks()) {
    EXPECT_NE(id, brick);
  }
}

TEST_P(ClusterOpsTest, ExpandVolumeIsCapped) {
  BrickId brick = dfs_->ListBricks().front();
  for (int i = 0; i < 10; ++i) {
    Operation expand = MakeOp(OpKind::kExpandVolume);
    expand.brick = brick;
    expand.size = dfs_->config().brick_capacity;
    (void)dfs_->Execute(expand);
  }
  EXPECT_LE(dfs_->FindBrick(brick)->capacity_bytes, 2 * dfs_->config().brick_capacity);
}

TEST_P(ClusterOpsTest, ReduceVolumeRefusesToStrandData) {
  // Fill the cluster so the remaining bricks cannot absorb an evacuation.
  uint64_t fill = dfs_->TotalCapacityBytes() * 2 / 5;
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/fill", fill)).status.ok());
  BrickId target = dfs_->ListBricks().front();
  for (int i = 0; i < 40; ++i) {
    Operation reduce = MakeOp(OpKind::kReduceVolume);
    reduce.brick = target;
    reduce.size = dfs_->config().brick_capacity;
    OpResult result = dfs_->Execute(reduce);
    if (!result.status.ok()) {
      break;
    }
  }
  const Brick* brick = dfs_->FindBrick(target);
  ASSERT_NE(brick, nullptr);
  // Reduction may never leave a brick with more data than capacity for long:
  // drain and check.
  for (int i = 0; i < 1000 && !dfs_->RebalanceDone(); ++i) {
    dfs_->AdvanceTime(Seconds(10));
  }
  EXPECT_LE(dfs_->FindBrick(target)->used_bytes,
            dfs_->FindBrick(target)->capacity_bytes);
}

TEST_P(ClusterOpsTest, UnavailableWithoutMetaNodes) {
  // Remove metadata nodes down to the minimum, then crash the survivors.
  std::vector<NodeId> mns = dfs_->ListMetaNodes();
  for (NodeId mn : mns) {
    dfs_->CrashNode(mn);
  }
  OpResult result = dfs_->Execute(MakeCreate("/f", kMiB));
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST_P(ClusterOpsTest, ResetRestoresInitialState) {
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  ASSERT_TRUE(dfs_->Execute(MakeOp(OpKind::kAddStorageNode)).status.ok());
  dfs_->ResetToInitial();
  EXPECT_EQ(dfs_->tree().file_count(), 0u);
  EXPECT_EQ(dfs_->TotalUsedBytes(), 0u);
  EXPECT_EQ(static_cast<int>(dfs_->ListStorageNodes().size()),
            dfs_->config().initial_storage_nodes);
  EXPECT_EQ(dfs_->completed_rebalance_rounds(), 0);
}

TEST_P(ClusterOpsTest, TimeAdvancesWithOperations) {
  SimTime before = dfs_->Now();
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", kGiB)).status.ok());
  EXPECT_GT(dfs_->Now(), before);
}

TEST_P(ClusterOpsTest, FreeSpaceShrinksWithWrites) {
  uint64_t before = dfs_->FreeSpaceBytes();
  ASSERT_TRUE(dfs_->Execute(MakeCreate("/f", 10 * kGiB)).status.ok());
  EXPECT_EQ(dfs_->FreeSpaceBytes(), before - 20 * kGiB);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, ClusterOpsTest,
                         ::testing::Values(Flavor::kHdfs, Flavor::kCeph,
                                           Flavor::kGluster, Flavor::kLeo),
                         [](const ::testing::TestParamInfo<Flavor>& info) {
                           return std::string(FlavorName(info.param));
                         });

// ---- flavor-specific behavior ----

TEST(GlusterFlavor, LinkfilesAppearWhenHashedBrickIsFull) {
  GlusterLikeCluster dfs;
  // Fill until placements start missing the hashed brick.
  uint64_t chunk = dfs.config().brick_capacity / 2;
  int created = 0;
  for (int i = 0; i < 64; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/f" + std::to_string(i);
    op.size = chunk;
    if (dfs.Execute(op).status.ok()) {
      ++created;
    }
  }
  EXPECT_GT(created, 4);
  EXPECT_GT(dfs.live_linkfiles(), 0u) << "full hashed bricks must leave linkfiles";
}

TEST(GlusterFlavor, RenameAcrossRangesLeavesLinkfile) {
  GlusterLikeCluster dfs;
  // Find a name whose rename target hashes to a different brick.
  Operation create;
  create.kind = OpKind::kCreate;
  create.path = "/src";
  create.size = kGiB;
  ASSERT_TRUE(dfs.Execute(create).status.ok());
  uint32_t links_before = dfs.live_linkfiles();
  for (int i = 0; i < 32; ++i) {
    std::string target = "/dst" + std::to_string(i);
    if (dfs.layout().Locate(DhtLayout::HashName(target)) !=
        dfs.layout().Locate(DhtLayout::HashName("/src"))) {
      Operation rename;
      rename.kind = OpKind::kRename;
      rename.path = "/src";
      rename.path2 = target;
      ASSERT_TRUE(dfs.Execute(rename).status.ok());
      break;
    }
  }
  EXPECT_GT(dfs.live_linkfiles(), links_before);
}

TEST(HdfsFlavor, ClusterMapTracksMembership) {
  HdfsLikeCluster dfs;
  size_t before = dfs.cluster_map().size();
  Operation add;
  add.kind = OpKind::kAddStorageNode;
  ASSERT_TRUE(dfs.Execute(add).status.ok());
  EXPECT_EQ(dfs.cluster_map().size(), before + 1);
}

TEST(HdfsFlavor, PlacementPrefersLeastLoaded) {
  HdfsLikeCluster dfs;
  // Pre-load one brick heavily via direct skew, then check new data avoids it.
  BrickId heavy = dfs.ListBricks().front();
  Operation big;
  big.kind = OpKind::kCreate;
  big.path = "/seed";
  big.size = 100 * kGiB;
  ASSERT_TRUE(dfs.Execute(big).status.ok());
  // Write many small files; the heaviest brick should receive the fewest.
  for (int i = 0; i < 40; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/s" + std::to_string(i);
    op.size = kGiB;
    ASSERT_TRUE(dfs.Execute(op).status.ok());
  }
  double heaviest = dfs.FindBrick(heavy)->UsedFraction();
  double max_other = 0;
  for (BrickId id : dfs.ListBricks()) {
    if (id != heavy) {
      max_other = std::max(max_other, dfs.FindBrick(id)->UsedFraction());
    }
  }
  // Weighted-tree placement levels the cluster: no other brick may exceed the
  // pre-loaded one by much.
  EXPECT_LE(max_other, heaviest + 0.05);
}

TEST(CephFlavor, CrushWeightsFollowCapacity) {
  CephLikeCluster dfs;
  Operation add;
  add.kind = OpKind::kAddVolume;
  add.size = 2 * dfs.config().brick_capacity;
  ASSERT_TRUE(dfs.Execute(add).status.ok());
  BrickId big = dfs.ListBricks().back();
  EXPECT_GT(dfs.crush().TargetWeight(big),
            dfs.crush().TargetWeight(dfs.ListBricks().front()) * 1.5);
}

TEST(LeoFlavor, RingTracksServingBricks) {
  LeoLikeCluster dfs;
  EXPECT_EQ(dfs.ring().target_count(), dfs.ListBricks().size());
  Operation add;
  add.kind = OpKind::kAddStorageNode;
  ASSERT_TRUE(dfs.Execute(add).status.ok());
  EXPECT_EQ(dfs.ring().target_count(), dfs.ListBricks().size());
}

}  // namespace
}  // namespace themis
