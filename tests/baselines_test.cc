// Structural tests for the baseline generation strategies: each must explore
// exactly the input space the paper ascribes to it.

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/alternate.h"
#include "src/baselines/concurrent.h"
#include "src/baselines/fix_conf.h"
#include "src/baselines/fix_req.h"
#include "src/baselines/themis_minus.h"
#include "src/dfs/flavors/factory.h"

namespace themis {
namespace {

struct StrategyRig {
  StrategyRig() : dfs(MakeCluster(Flavor::kGluster, 55)), rng(55) {
    model.SyncFromDfs(*dfs);
  }
  std::unique_ptr<DfsCluster> dfs;
  InputModel model;
  Rng rng;
};

TEST(FixReq, RequestMixIsFixed) {
  StrategyRig rig;
  FixReqStrategy strategy(rig.model, rig.rng);
  // Every test case carries exactly the canned request operators
  // (create/append/open/delete) — never any other file operator.
  for (int i = 0; i < 100; ++i) {
    OpSeq seq = strategy.Next();
    int requests = 0;
    for (const Operation& op : seq.ops) {
      if (ClassOf(op.kind) == OpClass::kFile) {
        ++requests;
        EXPECT_TRUE(op.kind == OpKind::kCreate || op.kind == OpKind::kAppend ||
                    op.kind == OpKind::kOpen || op.kind == OpKind::kDelete)
            << "Fix_req must not vary its request workload: "
            << std::string(OpKindName(op.kind));
      }
    }
    EXPECT_EQ(requests, 4);
    EXPECT_TRUE(seq.HasConfigOps()) << "Fix_req must explore configurations";
    strategy.OnOutcome(seq, ExecOutcome{});
  }
}

TEST(FixConf, ExploresOnlyRequestsAfterPrelude) {
  StrategyRig rig;
  FixConfStrategy strategy(rig.model, rig.rng);
  OpSeq prelude = strategy.Next();
  EXPECT_TRUE(prelude.HasConfigOps()) << "the first test case is the fixed setup";
  strategy.OnOutcome(prelude, ExecOutcome{});
  for (int i = 0; i < 100; ++i) {
    OpSeq seq = strategy.Next();
    EXPECT_FALSE(seq.HasConfigOps())
        << "Fix_conf must not vary the configuration after setup";
    EXPECT_TRUE(seq.HasRequestOps());
    strategy.OnOutcome(seq, ExecOutcome{});
  }
}

TEST(FixConf, ReplaysPreludeAfterClusterReset) {
  StrategyRig rig;
  FixConfStrategy strategy(rig.model, rig.rng);
  strategy.OnOutcome(strategy.Next(), ExecOutcome{});
  (void)strategy.Next();
  ExecOutcome failed;
  failed.failures.emplace_back();
  strategy.OnOutcome(OpSeq{}, failed);
  EXPECT_TRUE(strategy.Next().HasConfigOps()) << "setup must be reapplied after reset";
}

TEST(Alternate, SwitchesConfigurationOnConvergence) {
  StrategyRig rig;
  AlternateStrategy strategy(rig.model, rig.rng, 8, /*convergence_patience=*/5);
  OpSeq first = strategy.Next();
  EXPECT_TRUE(first.HasConfigOps()) << "an epoch starts with a configuration";
  strategy.OnOutcome(first, ExecOutcome{});
  EXPECT_EQ(strategy.config_epochs(), 1);
  // Request exploration with no new coverage for `patience` iterations
  // triggers the next configuration epoch.
  for (int i = 0; i < 5; ++i) {
    OpSeq seq = strategy.Next();
    EXPECT_FALSE(seq.HasConfigOps());
    strategy.OnOutcome(seq, ExecOutcome{});  // zero new coverage
  }
  OpSeq next_epoch = strategy.Next();
  EXPECT_TRUE(next_epoch.HasConfigOps());
  EXPECT_EQ(strategy.config_epochs(), 2);
}

TEST(Alternate, NewCoverageDelaysSwitching) {
  StrategyRig rig;
  AlternateStrategy strategy(rig.model, rig.rng, 8, /*convergence_patience=*/3);
  strategy.OnOutcome(strategy.Next(), ExecOutcome{});
  for (int i = 0; i < 20; ++i) {
    OpSeq seq = strategy.Next();
    EXPECT_FALSE(seq.HasConfigOps()) << "coverage keeps the epoch alive";
    ExecOutcome outcome;
    outcome.new_coverage = 5;
    strategy.OnOutcome(seq, outcome);
  }
  EXPECT_EQ(strategy.config_epochs(), 1);
}

TEST(Concurrent, AlwaysMixesBothSpaces) {
  StrategyRig rig;
  ConcurrentStrategy strategy(rig.model, rig.rng);
  for (int i = 0; i < 100; ++i) {
    OpSeq seq = strategy.Next();
    EXPECT_TRUE(seq.HasRequestOps());
    EXPECT_TRUE(seq.HasConfigOps());
    strategy.OnOutcome(seq, ExecOutcome{});
  }
}

TEST(ThemisMinus, IgnoresFeedback) {
  StrategyRig rig;
  ThemisMinusStrategy strategy(rig.model, rig.rng);
  // Same-length windows of random generation regardless of outcomes.
  ExecOutcome huge_gain;
  huge_gain.variance_gain = 10.0;
  for (int i = 0; i < 50; ++i) {
    OpSeq seq = strategy.Next();
    EXPECT_GE(seq.size(), 1u);
    EXPECT_LE(seq.size(), 8u);
    strategy.OnOutcome(seq, huge_gain);
  }
}

TEST(Strategies, NamesAreDistinct) {
  StrategyRig rig;
  FixReqStrategy fix_req(rig.model, rig.rng);
  FixConfStrategy fix_conf(rig.model, rig.rng);
  AlternateStrategy alternate(rig.model, rig.rng);
  ConcurrentStrategy concurrent(rig.model, rig.rng);
  ThemisMinusStrategy themis_minus(rig.model, rig.rng);
  std::set<std::string_view> names = {fix_req.name(), fix_conf.name(), alternate.name(),
                                      concurrent.name(), themis_minus.name()};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace themis
