// Reproduction-log format round-trips and replay behavior, plus the dynamic
// threshold adjuster.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/replay.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/injector.h"
#include "src/monitor/dynamic_threshold.h"

namespace themis {
namespace {

TEST(Replay, FormatAndParseEveryOperator) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 61);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  Rng rng(61);
  for (int i = 0; i < kOpKindCount; ++i) {
    Operation original = generator.GenerateOpOfKind(OpKindFromIndex(i), rng);
    std::string line = FormatOperation(original);
    Result<Operation> parsed = ParseOperation(line);
    ASSERT_TRUE(parsed.ok()) << line << " -> " << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, original.kind) << line;
    EXPECT_EQ(parsed->path, original.path) << line;
    EXPECT_EQ(parsed->path2, original.path2) << line;
    EXPECT_EQ(parsed->size, original.size) << line;
    if (original.kind == OpKind::kRemoveMetaNode ||
        original.kind == OpKind::kRemoveStorageNode ||
        original.kind == OpKind::kAddVolume) {
      EXPECT_EQ(parsed->node, original.node) << line;
    }
  }
}

TEST(Replay, LogRoundTrip) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 62);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  Rng rng(62);
  OpSeq seq = generator.Generate(rng, 8);
  std::string log = FormatReproductionLog(seq);
  Result<OpSeq> parsed = ParseReproductionLog(log);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), seq.size());
  EXPECT_EQ(FormatReproductionLog(*parsed), log);
}

TEST(Replay, ParserSkipsCommentsAndBlankLines) {
  Result<OpSeq> parsed = ParseReproductionLog(
      "# reproduction log\n\ncreate /f size=1024\n\n# trailing comment\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Replay, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseOperation("fly /to/the/moon").ok());
  EXPECT_FALSE(ParseOperation("create /f").ok());             // missing size
  EXPECT_FALSE(ParseOperation("create /f size=abc").ok());    // bad number
  EXPECT_FALSE(ParseOperation("remove_MN brick=1").ok());     // wrong key
  EXPECT_FALSE(ParseOperation("rename /only-one").ok());
  EXPECT_FALSE(ParseOperation("add_storage extra").ok());
  EXPECT_FALSE(ParseReproductionLog("# only comments\n").ok());
}

TEST(Replay, DeterministicReplayReproducesState) {
  Result<OpSeq> seq = ParseReproductionLog(
      "mkdir /d\n"
      "create /d/a size=2147483648\n"
      "create /d/b size=1073741824\n"
      "rename /d/b /d/c\n"
      "delete /d/a\n");
  ASSERT_TRUE(seq.ok());
  std::unique_ptr<DfsCluster> one = MakeCluster(Flavor::kLeo, 63);
  std::unique_ptr<DfsCluster> two = MakeCluster(Flavor::kLeo, 63);
  ReplayOutcome a = ReplayLog(*one, *seq);
  ReplayOutcome b = ReplayLog(*two, *seq);
  EXPECT_EQ(a.ops_executed, 5);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_DOUBLE_EQ(a.residual_imbalance, b.residual_imbalance);
  EXPECT_EQ(one->TotalUsedBytes(), two->TotalUsedBytes());
  EXPECT_TRUE(one->tree().IsFile("/d/c"));
}

TEST(Replay, HealthyReplayLeavesBalancedSystem) {
  Result<OpSeq> seq = ParseReproductionLog(
      "create /a size=10737418240\n"
      "create /b size=10737418240\n");
  ASSERT_TRUE(seq.ok());
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 64);
  ReplayOutcome outcome = ReplayLog(*dfs, *seq, /*repetitions=*/1);
  EXPECT_LT(outcome.residual_imbalance, 0.25);
  EXPECT_FALSE(outcome.any_node_crashed);
}

TEST(Replay, FaultyReplayReproducesPersistentImbalance) {
  // An instant plan-skipping fault: replaying a write-heavy log repeatedly
  // must leave a residual imbalance the rebalance cannot clear.
  FaultSpec spec;
  spec.id = "replayed-bug";
  spec.platform = Flavor::kGluster;
  spec.effect = EffectKind::kPlanSkipsVictim;
  spec.severity = 0.40;
  spec.trigger.min_window_ops = 1;
  spec.trigger.probability = 1.0;
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 65);
  FaultInjector injector({spec}, 65);
  dfs->set_fault_hooks(&injector);

  OpSeq seq;
  for (int i = 0; i < 8; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/r" + std::to_string(i);
    op.size = 40 * kGiB;  // enough stored data for a 25pp+ spread
    seq.ops.push_back(op);
  }
  // Repetition grows the hotspot (Finding 6); creates of existing paths fail
  // but the injector keeps steering on every operation.
  ReplayOutcome outcome = ReplayLog(*dfs, seq, /*repetitions=*/60);
  EXPECT_GE(outcome.residual_imbalance, 0.25)
      << "the injected fault must survive the post-replay rebalance";
}

// ---- dynamic threshold (§7 extension) ----

TEST(DynamicThreshold, StartsAtInitial) {
  DynamicThresholdAdjuster adjuster;
  EXPECT_DOUBLE_EQ(adjuster.current(), 0.20);
  EXPECT_DOUBLE_EQ(adjuster.MakeDetectorConfig().threshold, 0.20);
}

TEST(DynamicThreshold, RaisesOnFalsePositives) {
  DynamicThresholdAdjuster adjuster;
  adjuster.ReportFalsePositive();
  adjuster.ReportFalsePositive();
  EXPECT_DOUBLE_EQ(adjuster.current(), 0.25);
  EXPECT_EQ(adjuster.adjustments(), 2);
}

TEST(DynamicThreshold, TruePositivesDoNotAdjust) {
  DynamicThresholdAdjuster adjuster;
  adjuster.ReportTruePositive();
  adjuster.ReportTruePositive();
  EXPECT_DOUBLE_EQ(adjuster.current(), 0.20);
  EXPECT_EQ(adjuster.adjustments(), 0);
}

TEST(DynamicThreshold, CapsAtMaximum) {
  DynamicThresholdConfig config;
  config.initial = 0.25;    // binary-exact doubles: 0.25 + 0.125 == 0.375
  config.step = 0.125;
  config.maximum = 0.375;
  DynamicThresholdAdjuster adjuster(config);
  for (int i = 0; i < 10; ++i) {
    adjuster.ReportFalsePositive();
  }
  EXPECT_DOUBLE_EQ(adjuster.current(), 0.375);
  EXPECT_EQ(adjuster.adjustments(), 1);
}

}  // namespace
}  // namespace themis
