// Balancer state-machine coverage tests (DESIGN.md §16).
//
// The differential oracle: every transition the rebalance paths emit during
// real campaigns — per flavor, with and without injected faults, with and
// without environment faults — must be legal under the flavor's declared
// state machine, and coverage must be monotone over the campaign. Plus the
// serialization properties (save -> restore -> save byte-stable, malformed
// records rejected) and the feedback-blend gating (weight 0 changes
// nothing; weight > 0 turns new transitions into seed energy).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/coverage/coverage.h"
#include "src/coverage/model_coverage.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/env_fault.h"
#include "src/faults/fault_registry.h"
#include "src/faults/injector.h"
#include "src/monitor/detector.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

constexpr Flavor kFlavors[] = {Flavor::kHdfs, Flavor::kCeph, Flavor::kGluster,
                               Flavor::kLeo, Flavor::kGeo};

enum class CampaignMode { kHealthy, kFaulty, kEnvFault };

const char* ModeName(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kHealthy: return "healthy";
    case CampaignMode::kFaulty: return "faulty";
    case CampaignMode::kEnvFault: return "env_fault";
  }
  return "?";
}

// Runs a short hand-built campaign (the experiments.cc loop) with a
// ModelCoverage recorder attached and checks the oracle properties inline.
ModelCoverage RunOracleCampaign(Flavor flavor, CampaignMode mode,
                                uint64_t seed) {
  ModelCoverage model_coverage(flavor);
  std::unique_ptr<DfsCluster> cluster = MakeCluster(flavor, seed);
  CoverageRecorder coverage(FlavorBranchSpace(flavor), seed);
  cluster->set_coverage(&coverage);
  cluster->set_model_coverage(&model_coverage);

  std::vector<FaultSpec> faults;
  if (mode != CampaignMode::kHealthy) {
    faults = NewBugsFor(flavor);
  }
  FaultInjector injector(faults, seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  EnvFaultInjector env_injector(seed ^ 0xe4fa17ULL);
  if (mode == CampaignMode::kEnvFault) {
    cluster->set_env_faults(&env_injector);
  }

  Rng rng(seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(LoadVarianceWeights{});
  DetectorConfig detector_config;
  ImbalanceDetector detector(detector_config);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector,
                            &coverage, rng);
  executor.set_model_coverage(&model_coverage);

  FuzzerConfig fuzzer_config;
  if (mode == CampaignMode::kEnvFault) {
    fuzzer_config.env_fault_share = 0.2;
  }
  ThemisFuzzer fuzzer(model, rng, fuzzer_config);
  OpSeqGenerator init_generator(model);
  executor.SeedInitialData(init_generator, 60);

  size_t last_covered = model_coverage.TransitionsCovered();
  while (cluster->Now() < Hours(2)) {
    OpSeq testcase = fuzzer.Next();
    ExecOutcome outcome = executor.Run(testcase);
    fuzzer.OnOutcome(testcase, outcome);
    // Monotone coverage: distinct pairs never disappear, and the outcome's
    // delta accounts exactly for the growth across this test case.
    size_t covered = model_coverage.TransitionsCovered();
    EXPECT_GE(covered, last_covered);
    EXPECT_EQ(outcome.new_transitions, covered - last_covered);
    last_covered = covered;
  }
  return model_coverage;
}

// The per-flavor differential oracle over 5 flavors x 3 campaign modes.
TEST(ModelCoverageOracle, EveryEmittedTransitionIsLegal) {
  for (Flavor flavor : kFlavors) {
    for (CampaignMode mode : {CampaignMode::kHealthy, CampaignMode::kFaulty,
                              CampaignMode::kEnvFault}) {
      SCOPED_TRACE(std::string(FlavorName(flavor)) + "/" + ModeName(mode));
      ModelCoverage model_coverage = RunOracleCampaign(flavor, mode, 77);
      EXPECT_EQ(model_coverage.illegal_transitions(), 0u);
      // The balancer actually ran: some transition pair was covered, and
      // every recorded pair belongs to the declared machine.
      EXPECT_GT(model_coverage.TransitionsCovered(), 0u);
      EXPECT_GE(model_coverage.TotalTransitions(),
                model_coverage.TransitionsCovered());
      size_t recorded_pairs = 0;
      for (size_t f = 0; f < kBalancerStateCount; ++f) {
        for (size_t t = 0; t < kBalancerStateCount; ++t) {
          BalancerState from = static_cast<BalancerState>(f);
          BalancerState to = static_cast<BalancerState>(t);
          if (model_coverage.PairCount(from, to) == 0) {
            continue;
          }
          ++recorded_pairs;
          EXPECT_TRUE(IsLegalBalancerTransition(flavor, from, to))
              << BalancerStateName(from) << " -> " << BalancerStateName(to);
          EXPECT_TRUE(BalancerStateBelongsTo(flavor, from));
          EXPECT_TRUE(BalancerStateBelongsTo(flavor, to));
        }
      }
      EXPECT_EQ(recorded_pairs, model_coverage.TransitionsCovered());
    }
  }
}

TEST(ModelCoverageOracle, CrashStatesAppearOnlyInEnvFaultCampaigns) {
  ModelCoverage faulted =
      RunOracleCampaign(Flavor::kGluster, CampaignMode::kEnvFault, 91);
  ModelCoverage healthy =
      RunOracleCampaign(Flavor::kGluster, CampaignMode::kHealthy, 91);
  uint64_t healthy_crashes = 0;
  for (size_t f = 0; f < kBalancerStateCount; ++f) {
    healthy_crashes += healthy.PairCount(static_cast<BalancerState>(f),
                                         BalancerState::kCrashed);
  }
  EXPECT_EQ(healthy_crashes, 0u);
  (void)faulted;  // crash coverage is seed-dependent; legality checked above
}

TEST(ModelCoverageMachine, DeclaredMachinesAreConsistent) {
  for (Flavor flavor : kFlavors) {
    SCOPED_TRACE(FlavorName(flavor));
    BalancerState move = BalancerMoveState(flavor);
    BalancerState settle = BalancerSettleState(flavor);
    EXPECT_TRUE(BalancerStateBelongsTo(flavor, move));
    EXPECT_TRUE(BalancerStateBelongsTo(flavor, settle));
    // The shared lifecycle edges every flavor must provide.
    EXPECT_TRUE(IsLegalBalancerTransition(flavor, move, settle));
    EXPECT_TRUE(
        IsLegalBalancerTransition(flavor, settle, BalancerState::kIdle));
    EXPECT_TRUE(IsLegalBalancerTransition(flavor, BalancerState::kIdle,
                                          BalancerState::kCrashed));
    EXPECT_TRUE(IsLegalBalancerTransition(flavor, move,
                                          BalancerState::kCrashed));
    EXPECT_TRUE(IsLegalBalancerTransition(flavor, BalancerState::kCrashed,
                                          BalancerState::kIdle));
    // Phases of other flavors are foreign states and never legal targets.
    BalancerState foreign = flavor == Flavor::kHdfs
                                ? BalancerState::kCephUpmapCompute
                                : BalancerState::kHdfsIteration;
    EXPECT_FALSE(BalancerStateBelongsTo(flavor, foreign));
    EXPECT_FALSE(
        IsLegalBalancerTransition(flavor, BalancerState::kIdle, foreign));
    // Skipping the settle phase is a protocol violation.
    EXPECT_FALSE(
        IsLegalBalancerTransition(flavor, move, BalancerState::kIdle));
  }
}

TEST(ModelCoverageMachine, IssueNamedSequencesAreLegal) {
  auto walk = [](Flavor flavor, std::initializer_list<BalancerState> states) {
    ModelCoverage mc(flavor);
    for (BalancerState s : states) {
      mc.Transition(s);
    }
    return mc.illegal_transitions();
  };
  EXPECT_EQ(walk(Flavor::kGluster,
                 {BalancerState::kGlusterFixLayout,
                  BalancerState::kGlusterMigrateData,
                  BalancerState::kGlusterSettle, BalancerState::kIdle}),
            0u);
  EXPECT_EQ(walk(Flavor::kHdfs,
                 {BalancerState::kHdfsIteration, BalancerState::kHdfsPairing,
                  BalancerState::kHdfsBlockMove, BalancerState::kHdfsSettle,
                  BalancerState::kIdle}),
            0u);
  EXPECT_EQ(walk(Flavor::kCeph,
                 {BalancerState::kCephUpmapCompute, BalancerState::kCephApply,
                  BalancerState::kCephSettle, BalancerState::kIdle}),
            0u);
  EXPECT_EQ(walk(Flavor::kLeo,
                 {BalancerState::kLeoRingPlan, BalancerState::kLeoTakeover,
                  BalancerState::kLeoSettle, BalancerState::kIdle}),
            0u);
  EXPECT_EQ(walk(Flavor::kGeo,
                 {BalancerState::kGeoSiteDrain,
                  BalancerState::kGeoGroupRebalance, BalancerState::kGeoSettle,
                  BalancerState::kIdle}),
            0u);
  // An illegal walk is counted, not dropped.
  EXPECT_EQ(walk(Flavor::kHdfs, {BalancerState::kHdfsBlockMove}), 1u);
}

TEST(ModelCoverageSerialization, SaveRestoreSaveIsByteStable) {
  for (Flavor flavor : kFlavors) {
    SCOPED_TRACE(FlavorName(flavor));
    ModelCoverage original =
        RunOracleCampaign(flavor, CampaignMode::kEnvFault, 13);
    SnapshotWriter first;
    original.SaveState(first);

    ModelCoverage restored(flavor);
    SnapshotReader reader(first.buffer());
    ASSERT_TRUE(restored.RestoreState(reader).ok());
    ASSERT_TRUE(reader.AtEnd());
    EXPECT_EQ(restored.TransitionsCovered(), original.TransitionsCovered());
    EXPECT_EQ(restored.TotalTransitions(), original.TotalTransitions());
    EXPECT_EQ(restored.illegal_transitions(), original.illegal_transitions());
    EXPECT_EQ(restored.current(), original.current());

    SnapshotWriter second;
    restored.SaveState(second);
    EXPECT_EQ(first.buffer(), second.buffer());
  }
}

TEST(ModelCoverageSerialization, RestoredRecorderContinuesTheStream) {
  ModelCoverage original(Flavor::kCeph);
  original.Transition(BalancerState::kCephUpmapCompute);
  original.Transition(BalancerState::kCephApply);
  SnapshotWriter writer;
  original.SaveState(writer);

  ModelCoverage restored(Flavor::kCeph);
  SnapshotReader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreState(reader).ok());
  // Both continue from the same current state with the same pair set.
  EXPECT_FALSE(restored.Transition(BalancerState::kCephSettle) !=
               original.Transition(BalancerState::kCephSettle));
  EXPECT_EQ(restored.TransitionsCovered(), original.TransitionsCovered());
  EXPECT_EQ(restored.illegal_transitions(), 0u);
}

TEST(ModelCoverageSerialization, FlavorMismatchIsRejected) {
  ModelCoverage gluster(Flavor::kGluster);
  gluster.Transition(BalancerState::kGlusterFixLayout);
  SnapshotWriter writer;
  gluster.SaveState(writer);
  ModelCoverage ceph(Flavor::kCeph);
  SnapshotReader reader(writer.buffer());
  Status status = ceph.RestoreState(reader);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("flavor mismatch"), std::string::npos);
}

// The feedback blend: weight 0 ignores transitions entirely; weight > 0
// turns a new transition into an accepted seed even with zero variance
// gain, zero branch coverage and no failures.
TEST(ModelCoverageBlend, TransitionWeightGatesTheSecondSignal) {
  ExecOutcome transition_only;
  transition_only.new_transitions = 3;

  auto pool_size_after = [&](double weight) {
    Rng rng(5);
    InputModel model;
    FuzzerConfig config;
    config.transition_weight = weight;
    ThemisFuzzer fuzzer(model, rng, config);
    OpSeq seq = fuzzer.Next();
    size_t before = fuzzer.pool().size();
    fuzzer.OnOutcome(seq, transition_only);
    return fuzzer.pool().size() - before;
  };
  EXPECT_EQ(pool_size_after(0.0), 0u);   // default: signal is observational
  EXPECT_EQ(pool_size_after(0.25), 1u);  // blended: transition earns energy
}

}  // namespace
}  // namespace themis
