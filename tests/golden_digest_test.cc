// Golden-digest regression pins: the CampaignResult digest for a fixed
// (strategy, flavor, seed, budget) is part of the repo's determinism
// contract — the checkpoint/resume machinery, the --jobs matrix and this
// suite all compare against it. If a change to the simulation legitimately
// shifts behavior, regenerate with tools/digest_probe and update the
// constants below IN THE SAME COMMIT, calling the behavior change out in
// the commit message. A silent digest change is a determinism bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/harness/campaign.h"

namespace themis {
namespace {

struct GoldenEntry {
  Flavor flavor;
  uint64_t digest;
  int testcases;
  uint64_t total_ops;
};

// seed=1234, budget=2 virtual hours, strategy "Themis", default config.
constexpr GoldenEntry kGolden[] = {
    {Flavor::kGluster, 0xd7f0af71ded96a27ULL, 143, 3575},
    {Flavor::kHdfs, 0x6f0dca68c74aa2f0ULL, 150, 5886},
    {Flavor::kCeph, 0x197d2b721543e2c5ULL, 133, 6081},
    {Flavor::kLeo, 0xb073289e30566ec7ULL, 130, 5754},
};

TEST(GoldenDigestTest, PerFlavorDigestsArePinned) {
  for (const GoldenEntry& golden : kGolden) {
    CampaignConfig config;
    config.flavor = golden.flavor;
    config.seed = 1234;
    config.budget = Hours(2);
    Result<CampaignResult> result = Campaign(config).Run("Themis");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::string flavor(FlavorName(golden.flavor));
    EXPECT_EQ(result->Digest(), golden.digest) << flavor;
    EXPECT_EQ(result->testcases, golden.testcases) << flavor;
    EXPECT_EQ(result->total_ops, golden.total_ops) << flavor;
  }
}

// The digest itself must be reproducible from an identical result: running
// the same campaign twice in one process (registry state, metrics and logs
// all differ between runs) yields the same digest.
TEST(GoldenDigestTest, DigestIsAPureFunctionOfTheResult) {
  CampaignConfig config;
  config.seed = 77;
  config.budget = Hours(1);
  Result<CampaignResult> first = Campaign(config).Run("Themis");
  Result<CampaignResult> second = Campaign(config).Run("Themis");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->Digest(), second->Digest());
}

}  // namespace
}  // namespace themis
