// Property: on a HEALTHY cluster (no faults), an explicit rebalance must
// bring the storage spread (hottest node vs fleet utilization) within the
// flavor's native threshold — otherwise the imbalance detector's
// double-check protocol would report false positives on a correct system.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/strings.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/dfs/flavors/factory.h"

namespace themis {
namespace {

struct ConvergenceCase {
  Flavor flavor;
  uint64_t seed;
};

class RebalanceConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {};

void DrainAll(DfsCluster& dfs) {
  for (int i = 0; i < 5000 && !dfs.RebalanceDone(); ++i) {
    dfs.AdvanceTime(Seconds(10));
  }
  ASSERT_TRUE(dfs.RebalanceDone()) << "migration queue failed to drain";
}

std::string DescribeNodes(const DfsCluster& dfs) {
  std::string out;
  for (const LoadSample& sample : dfs.SampleLoad()) {
    if (sample.is_storage && sample.online && !sample.crashed &&
        sample.capacity_bytes > 0) {
      out += Sprintf("n%u:%.0f%%(%lluG/%lluG) ", sample.node,
                     100.0 * static_cast<double>(sample.used_bytes) /
                         static_cast<double>(sample.capacity_bytes),
                     static_cast<unsigned long long>(sample.used_bytes >> 30),
                     static_cast<unsigned long long>(sample.capacity_bytes >> 30));
    }
  }
  return out;
}

TEST_P(RebalanceConvergenceTest, ExplicitRebalanceRestoresBalance) {
  const ConvergenceCase& param = GetParam();
  std::unique_ptr<DfsCluster> dfs = MakeCluster(param.flavor, param.seed);
  Rng rng(param.seed * 977 + 3);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);

  for (int round = 0; round < 12; ++round) {
    for (int step = 0; step < 120; ++step) {
      Operation op = generator.GenerateOp(rng);
      OpResult result = dfs->Execute(op);
      model.Observe(op, result);
      if (step % 25 == 0) {
        model.SyncFromDfs(*dfs);
      }
    }
    // Drain whatever is in flight, then explicit rebalance rounds. One round
    // may legitimately be partial — the flavor's own hash-placement moves
    // share the round's receive budget with leveling — but rounds must
    // converge quickly (the detector's double-check issues two).
    DrainAll(*dfs);
    for (int pass = 0; pass < 3; ++pass) {
      (void)dfs->TriggerRebalance();
      DrainAll(*dfs);
    }
    // The balancer's guarantee is its native threshold plus slack for chunk
    // granularity and min-free-disk refusals on a nearly full cluster; the
    // hard requirement is staying under 0.245 so the optimal detector
    // threshold t = 25% (Table 7) never sees a healthy system as failed.
    double limit = std::min(0.245, dfs->config().native_threshold + 0.06);
    double spread = dfs->StorageImbalance();
    EXPECT_LE(spread, limit) << "round " << round << " spread " << spread << "\n"
                             << DescribeNodes(*dfs);
    if (HasFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RebalanceConvergenceTest,
    ::testing::Values(
        ConvergenceCase{Flavor::kHdfs, 1}, ConvergenceCase{Flavor::kHdfs, 2},
        ConvergenceCase{Flavor::kHdfs, 3}, ConvergenceCase{Flavor::kCeph, 1},
        ConvergenceCase{Flavor::kCeph, 2}, ConvergenceCase{Flavor::kCeph, 3},
        ConvergenceCase{Flavor::kGluster, 1}, ConvergenceCase{Flavor::kGluster, 2},
        ConvergenceCase{Flavor::kGluster, 3}, ConvergenceCase{Flavor::kLeo, 1},
        ConvergenceCase{Flavor::kLeo, 2}, ConvergenceCase{Flavor::kLeo, 3}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& param_info) {
      return std::string(FlavorName(param_info.param.flavor)) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace themis
