// Bandit scheduling determinism (DESIGN.md §16).
//
// The bandit reallocates per-round budget between strategies using only the
// campaign Rng and the per-arm statistics that ride in the v6 snapshot, so
// bandit-enabled campaigns must be bit-identical across --jobs counts and
// across kill/resume cycles — the same guarantee resume_determinism_test
// pins for the plain Themis strategy. Plus the policy property itself:
// on a synthetic two-strategy fixture the bandit shifts budget toward the
// arm that keeps producing novelty.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/bandit.h"
#include "src/core/input_model.h"
#include "src/core/strategy_registry.h"
#include "src/harness/campaign.h"
#include "src/harness/runner.h"
#include "src/harness/snapshot.h"
#include "src/harness/telemetry_export.h"

namespace themis {
namespace {

std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("bandit_det_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

CampaignConfig BaseConfig(Flavor flavor) {
  CampaignConfig config;
  config.flavor = flavor;
  config.seed = 9001;
  config.budget = Hours(2);
  config.transition_weight = 0.5;  // bandit campaigns blend both signals
  return config;
}

TEST(BanditDeterminismTest, RegisteredAndConstructible) {
  ASSERT_TRUE(StrategyRegistry::Instance().Contains("Bandit"));
  Rng rng(1);
  InputModel model;
  auto made = StrategyRegistry::Instance().Make("Bandit", model, rng);
  ASSERT_TRUE(made.ok());
  EXPECT_EQ((*made)->name(), "Bandit");
}

// Same seed, same config => identical digests run-to-run (the bandit draws
// only from the campaign Rng, never from wall clock or addresses).
TEST(BanditDeterminismTest, RepeatedRunsAreBitIdentical) {
  for (Flavor flavor : {Flavor::kGluster, Flavor::kCeph}) {
    Result<CampaignResult> a = Campaign(BaseConfig(flavor)).Run("Bandit");
    Result<CampaignResult> b = Campaign(BaseConfig(flavor)).Run("Bandit");
    ASSERT_TRUE(a.ok() && b.ok()) << FlavorName(flavor);
    EXPECT_EQ(a->Digest(), b->Digest()) << FlavorName(flavor);
    EXPECT_EQ(a->transition_coverage, b->transition_coverage)
        << FlavorName(flavor);
  }
}

// Matrix of bandit campaigns across 4 flavors x 2 seeds: the rendered
// summary JSON must be byte-identical at --jobs 1, 2 and 8.
TEST(BanditDeterminismTest, SummaryByteIdenticalAcrossJobsCounts) {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph,
                    Flavor::kLeo};
  matrix.strategies = {"Bandit"};
  matrix.seeds = 2;
  matrix.matrix_seed = 777;
  matrix.base.budget = Hours(2);
  matrix.base.transition_weight = 0.5;

  std::string expected;
  for (int jobs : {1, 2, 8}) {
    RunnerOptions options;
    options.jobs = jobs;
    MatrixResult result = CampaignRunner(options).Run(matrix);
    ASSERT_EQ(result.FailedJobs(), 0) << "jobs " << jobs;
    std::string rendered = RenderCampaignSummaryJson(result);
    if (expected.empty()) {
      expected = rendered;
    } else {
      EXPECT_EQ(rendered, expected) << "jobs " << jobs;
    }
  }
}

// Kill/resume parity: a bandit campaign killed at a checkpoint and resumed
// lands on the uninterrupted digest — the arm statistics, active arm and
// round position all ride through the v6 snapshot strategy record.
TEST(BanditDeterminismTest, KillResumeConvergesToUninterruptedDigest) {
  for (Flavor flavor : {Flavor::kGluster, Flavor::kHdfs}) {
    const std::string flavor_name(FlavorName(flavor));
    Result<CampaignResult> uninterrupted =
        Campaign(BaseConfig(flavor)).Run("Bandit");
    ASSERT_TRUE(uninterrupted.ok()) << flavor_name;

    const std::string dir = FreshDir("crash_" + flavor_name);
    CampaignConfig crash = BaseConfig(flavor);
    crash.checkpoint_dir = dir;
    // A cadence that is not a multiple of the bandit round length, so
    // checkpoints land mid-round and round_position_ must be restored.
    crash.checkpoint_every_ops = 350;
    crash.halt_after_checkpoints = 1;
    ASSERT_FALSE(Campaign(crash).Run("Bandit").ok()) << flavor_name;

    crash.resume = true;  // die once more, one checkpoint further in
    ASSERT_FALSE(Campaign(crash).Run("Bandit").ok()) << flavor_name;

    CampaignConfig finish = BaseConfig(flavor);
    finish.checkpoint_dir = dir;
    finish.checkpoint_every_ops = 350;
    finish.resume = true;
    Result<CampaignResult> resumed = Campaign(finish).Run("Bandit");
    ASSERT_TRUE(resumed.ok())
        << flavor_name << ": " << resumed.status().ToString();
    EXPECT_EQ(resumed->Digest(), uninterrupted->Digest()) << flavor_name;
    EXPECT_EQ(resumed->total_ops, uninterrupted->total_ops) << flavor_name;
    EXPECT_EQ(resumed->transition_coverage, uninterrupted->transition_coverage)
        << flavor_name;
  }
}

// --- Budget-shift fixture -------------------------------------------------

// A synthetic strategy whose outcomes the test scripts: the bandit sees its
// Next() sequences but the reward comes from the ExecOutcome the test feeds
// back, so we can make one arm "hot" and one "cold" deterministically.
class FixedStrategy : public Strategy {
 public:
  explicit FixedStrategy(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  OpSeq Next() override { return OpSeq{}; }
  void OnOutcome(const OpSeq&, const ExecOutcome&) override {}
  void SaveState(SnapshotWriter&) const override {}
  Status RestoreState(SnapshotReader&) override { return Status::Ok(); }

 private:
  std::string name_;
};

BanditStrategy MakeTwoArmBandit(Rng& rng) {
  std::vector<BanditStrategy::Arm> arms;
  BanditStrategy::Arm hot;
  hot.name = "hot";
  hot.strategy = std::make_unique<FixedStrategy>("hot");
  arms.push_back(std::move(hot));
  BanditStrategy::Arm cold;
  cold.name = "cold";
  cold.strategy = std::make_unique<FixedStrategy>("cold");
  arms.push_back(std::move(cold));
  BanditConfig config;
  config.round_length = 4;
  config.epsilon = 0.1;
  return BanditStrategy(std::move(arms), rng, config);
}

// One arm keeps finding new transitions, the other never does: after a few
// hundred pulls the productive arm must hold the clear majority of the
// budget, not the 50/50 a round-robin scheduler would give.
TEST(BanditBudgetShift, BudgetFlowsTowardTheNovelArm) {
  Rng rng(42);
  BanditStrategy bandit = MakeTwoArmBandit(rng);
  ExecOutcome novel;
  novel.new_transitions = 1;
  ExecOutcome barren;
  for (int i = 0; i < 400; ++i) {
    OpSeq seq = bandit.Next();
    bool hot_active = bandit.active_arm() == 0;
    bandit.OnOutcome(seq, hot_active ? novel : barren);
  }
  uint64_t hot_pulls = bandit.arms()[0].pulls;
  uint64_t cold_pulls = bandit.arms()[1].pulls;
  EXPECT_EQ(hot_pulls + cold_pulls, 400u);
  // The hot arm should dominate; the cold arm keeps only the exploration
  // floor (epsilon draws plus the UCB bonus visits).
  EXPECT_GT(hot_pulls, 3 * cold_pulls) << hot_pulls << " vs " << cold_pulls;
  EXPECT_GT(cold_pulls, 0u);  // but exploration never starves an arm forever
}

// Candidates pay the same way new transitions do.
TEST(BanditBudgetShift, CandidateRewardsCountToo) {
  ExecOutcome candidate_only;
  candidate_only.candidates = 2;
  EXPECT_EQ(BanditStrategy::Reward(candidate_only), 1.0);
  ExecOutcome both;
  both.candidates = 1;
  both.new_transitions = 1;
  EXPECT_EQ(BanditStrategy::Reward(both), 2.0);
  ExecOutcome neither;
  EXPECT_EQ(BanditStrategy::Reward(neither), 0.0);
}

// The arm table round-trips byte-stably mid-round (the serialization the
// kill/resume test exercises end-to-end, pinned here at the unit level).
TEST(BanditBudgetShift, ArmTableRoundTripsByteStably) {
  Rng rng(7);
  BanditStrategy original = MakeTwoArmBandit(rng);
  ExecOutcome novel;
  novel.new_transitions = 1;
  for (int i = 0; i < 10; ++i) {  // not a multiple of round_length = 4
    OpSeq seq = original.Next();
    original.OnOutcome(seq, novel);
  }
  SnapshotWriter first;
  original.SaveState(first);

  Rng rng2(7);
  BanditStrategy restored = MakeTwoArmBandit(rng2);
  SnapshotReader reader(first.buffer());
  ASSERT_TRUE(restored.RestoreState(reader).ok());
  ASSERT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.active_arm(), original.active_arm());
  EXPECT_EQ(restored.arms()[0].pulls, original.arms()[0].pulls);
  EXPECT_EQ(restored.arms()[1].reward_sum, original.arms()[1].reward_sum);

  SnapshotWriter second;
  restored.SaveState(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

}  // namespace
}  // namespace themis
