// Tests for the test-case executor, the double-check protocol, and the
// Themis fuzzing loop.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/strings.h"
#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/injector.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

FaultSpec InstantHotspot(double severity) {
  FaultSpec spec;
  spec.id = "hotspot";
  spec.platform = Flavor::kGluster;
  spec.type = FailureType::kImbalancedStorage;
  spec.effect = EffectKind::kPlanSkipsVictim;
  spec.severity = severity;
  spec.trigger.min_window_ops = 1;
  spec.trigger.probability = 1.0;
  return spec;
}

struct Rig {
  explicit Rig(std::vector<FaultSpec> faults, uint64_t seed = 7)
      : dfs(MakeCluster(Flavor::kGluster, seed)),
        coverage(FlavorBranchSpace(Flavor::kGluster), seed),
        injector(std::move(faults), seed),
        rng(seed),
        monitor(LoadVarianceWeights{}),
        detector(DetectorConfig{}),
        executor(*dfs, model, monitor, detector, &injector, &coverage, rng) {
    dfs->set_coverage(&coverage);
    dfs->set_fault_hooks(&injector);
  }

  std::unique_ptr<DfsCluster> dfs;
  CoverageRecorder coverage;
  FaultInjector injector;
  Rng rng;
  InputModel model;
  StatesMonitor monitor;
  ImbalanceDetector detector;
  TestCaseExecutor executor;
};

OpSeq CreateSeq(int count, uint64_t size, const std::string& prefix) {
  OpSeq seq;
  for (int i = 0; i < count; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/" + prefix + std::to_string(i);
    op.size = size;
    seq.ops.push_back(op);
  }
  return seq;
}

TEST(Executor, SeedInitialDataPopulatesCluster) {
  Rig rig({});
  OpSeqGenerator generator(rig.model);
  rig.executor.SeedInitialData(generator, 40);
  EXPECT_GE(rig.dfs->tree().file_count(), 20u);
  EXPECT_EQ(rig.executor.total_ops(), 40u);
}

TEST(Executor, RunExecutesAndScores) {
  Rig rig({});
  OpSeqGenerator generator(rig.model);
  rig.executor.SeedInitialData(generator, 20);
  ExecOutcome outcome = rig.executor.Run(CreateSeq(4, kGiB, "exec_"));
  EXPECT_EQ(outcome.ops_executed, 4);
  EXPECT_EQ(outcome.ops_ok, 4);
  EXPECT_GE(outcome.variance_score, 0.0);
  // Identical-shape creates may hit no new tuples, but the campaign so far
  // must have produced coverage.
  EXPECT_GT(rig.coverage.TotalHits(), 0u);
  EXPECT_TRUE(outcome.failures.empty());
}

TEST(Executor, HealthyImbalanceIsNotConfirmed) {
  // Drive a healthy cluster hard; every candidate must be filtered by the
  // rebalance double-check (no false positives at t = 25%).
  Rig rig({});
  OpSeqGenerator generator(rig.model);
  rig.executor.SeedInitialData(generator, 40);
  InputModel& model = rig.model;
  OpSeqMutator mutator(model, generator);
  Rng rng(3);
  OpSeq seq = generator.Generate(rng, 8);
  for (int i = 0; i < 150; ++i) {
    ExecOutcome outcome = rig.executor.Run(seq);
    EXPECT_TRUE(outcome.failures.empty()) << "false positive on a healthy cluster";
    seq = mutator.Mutate(seq, rng);
  }
}

TEST(Executor, ActiveFaultIsConfirmedAndLabeled) {
  Rig rig({InstantHotspot(0.45)});
  OpSeqGenerator generator(rig.model);
  rig.executor.SeedInitialData(generator, 40);
  std::vector<FailureReport> confirmed;
  for (int i = 0; i < 120 && confirmed.empty(); ++i) {
    ExecOutcome outcome = rig.executor.Run(CreateSeq(6, 2 * kGiB, Sprintf("r%d_", i)));
    confirmed = outcome.failures;
  }
  ASSERT_FALSE(confirmed.empty()) << "the active fault was never confirmed";
  EXPECT_TRUE(confirmed.front().IsTruePositive());
  EXPECT_EQ(confirmed.front().DedupKey(), "hotspot");
  EXPECT_EQ(confirmed.front().dimension, ImbalanceDimension::kStorage);
  EXPECT_FALSE(confirmed.front().testcase.empty());
  // Confirmation resets the cluster.
  EXPECT_EQ(rig.dfs->tree().file_count(), 0u);
}

TEST(Executor, CrashFaultConfirmsViaNodeHealth) {
  FaultSpec crash;
  crash.id = "crash";
  crash.platform = Flavor::kGluster;
  crash.type = FailureType::kCrash;
  crash.effect = EffectKind::kCrashNode;
  crash.trigger.min_window_ops = 1;
  crash.trigger.probability = 1.0;
  Rig rig({crash});
  OpSeqGenerator generator(rig.model);
  rig.executor.SeedInitialData(generator, 10);
  ExecOutcome outcome = rig.executor.Run(CreateSeq(2, kGiB, "c"));
  ASSERT_FALSE(outcome.failures.empty());
  EXPECT_EQ(outcome.failures.front().dimension, ImbalanceDimension::kNodeHealth);
}

// ---- fuzzer ----

TEST(Fuzzer, GeneratesWithinBounds) {
  Rig rig({});
  Rng rng(11);
  FuzzerConfig config;
  config.initial_seeds = 4;
  ThemisFuzzer fuzzer(rig.model, rng, config);
  rig.model.SyncFromDfs(*rig.dfs);
  for (int i = 0; i < 100; ++i) {
    OpSeq seq = fuzzer.Next();
    EXPECT_GE(seq.size(), 1u);
    EXPECT_LE(seq.size(), 8u);
    ExecOutcome outcome;
    fuzzer.OnOutcome(seq, outcome);
  }
}

TEST(Fuzzer, RetainsVarianceGainingSeeds) {
  Rig rig({});
  Rng rng(12);
  FuzzerConfig config;
  config.initial_seeds = 1;
  ThemisFuzzer fuzzer(rig.model, rng, config);
  rig.model.SyncFromDfs(*rig.dfs);
  (void)fuzzer.Next();
  OpSeq gaining;
  gaining.ops.resize(2);
  ExecOutcome gain;
  gain.variance_score = 0.3;
  gain.variance_gain = 0.2;
  fuzzer.OnOutcome(gaining, gain);
  EXPECT_EQ(fuzzer.pool().size(), 1u);
  // Unproductive outcomes are not pooled.
  ExecOutcome flat;
  fuzzer.OnOutcome(gaining, flat);
  EXPECT_EQ(fuzzer.pool().size(), 1u);
}

TEST(Fuzzer, ClimbsOnGainAndStopsOnFailure) {
  Rig rig({});
  Rng rng(13);
  FuzzerConfig config;
  config.initial_seeds = 1;
  ThemisFuzzer fuzzer(rig.model, rng, config);
  rig.model.SyncFromDfs(*rig.dfs);
  (void)fuzzer.Next();
  OpSeq seed = CreateSeq(4, kGiB, "x");
  ExecOutcome gain;
  gain.variance_score = 0.3;
  gain.variance_gain = 0.2;
  fuzzer.OnOutcome(seed, gain);
  // While climbing, Next() produces light variations of the seed: same
  // length +/- 1 and mostly identical operators.
  OpSeq next = fuzzer.Next();
  EXPECT_GE(next.size(), seed.size() - 1);
  EXPECT_LE(next.size(), seed.size() + 1);
  // A confirmed failure (cluster reset) ends the climb.
  ExecOutcome failed = gain;
  FailureReport report;
  failed.failures.push_back(report);
  fuzzer.OnOutcome(next, failed);
  // No crash; next test case still valid.
  EXPECT_GE(fuzzer.Next().size(), 1u);
}

TEST(Fuzzer, VarianceGuidanceCanBeDisabled) {
  Rig rig({});
  Rng rng(14);
  FuzzerConfig config;
  config.variance_guidance = false;
  config.initial_seeds = 1;
  ThemisFuzzer fuzzer(rig.model, rng, config);
  rig.model.SyncFromDfs(*rig.dfs);
  (void)fuzzer.Next();
  ExecOutcome gain;
  gain.variance_gain = 0.5;
  fuzzer.OnOutcome(CreateSeq(2, kGiB, "y"), gain);
  EXPECT_EQ(fuzzer.pool().size(), 0u) << "ablated fuzzer must ignore feedback";
}

}  // namespace
}  // namespace themis
