// Fleet service invariants (DESIGN.md §17), exercised in-process (the
// worker loop is a plain function; no fork needed):
//
//   * digest parity — a single-worker single-job fleet, where every corpus
//     seed is the job's own publication deduped to an import no-op, renders
//     a campaign summary byte-identical to the plain CampaignRunner on the
//     same matrix (multi-job fleets intentionally diverge: later jobs import
//     earlier jobs' seeds — that cross-pollination is the point of the
//     shared corpus, and those runs are validated by invariants instead);
//   * cross-job seed exchange — a second fleet sharing the corpus directory
//     imports the first fleet's published seeds;
//   * crash/restart — a worker halted mid-job by the checkpoint crash hook
//     leaves its claim orphaned; the restarted incarnation re-adopts it,
//     resumes from the checkpoint, and the finished fleet's summary is
//     byte-identical to a never-crashed fleet (exactly-once accounting);
//   * work-queue staging — re-staging over an existing fleet directory
//     skips jobs that already have done records.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/fleet/supervisor.h"
#include "src/fleet/work_queue.h"
#include "src/fleet/worker.h"
#include "src/harness/runner.h"
#include "src/harness/telemetry_export.h"

namespace themis {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("fleet_service_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

CampaignMatrix TestMatrix(int seeds) {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster};
  matrix.strategies = {"Themis"};
  matrix.seeds = seeds;
  matrix.matrix_seed = 1234;
  matrix.base.budget = Hours(1);
  return matrix;
}

// Done records -> the deterministic summary document, the same way the
// supervisor's final merge builds it.
std::string SummaryFromDoneRecords(const FleetPaths& paths) {
  Result<std::vector<FleetDoneRecord>> records = ReadAllDoneRecords(paths);
  EXPECT_TRUE(records.ok()) << records.status().ToString();
  MatrixResult result;
  for (FleetDoneRecord& record : records.value()) {
    JobResult job;
    job.job = record.job;
    job.status = record.job_status;
    job.result = std::move(record.result);
    result.jobs.push_back(std::move(job));
  }
  return RenderCampaignSummaryJson(result);
}

TEST(FleetServiceTest, SingleWorkerFleetMatchesPlainRunnerByteForByte) {
  // One job: with several jobs the later ones would import the earlier
  // ones' corpus seeds and legitimately diverge from the plain runner.
  CampaignMatrix matrix = TestMatrix(/*seeds=*/1);

  // Reference: the plain in-process runner, telemetry collection on (the
  // fleet worker always enables it, and telemetry events are part of the
  // result digest).
  CampaignMatrix reference_matrix = matrix;
  reference_matrix.base.collect_telemetry = true;
  MatrixResult reference = CampaignRunner().Run(reference_matrix);
  ASSERT_EQ(reference.FailedJobs(), 0);
  std::string reference_summary = RenderCampaignSummaryJson(reference);

  // Fleet: stage + one in-process worker draining the queue.
  std::string dir = FreshDir("parity");
  FleetPaths paths = FleetPaths::At(dir);
  ASSERT_TRUE(StageFleetJobs(paths, matrix, /*checkpoint_every_ops=*/2000).ok());
  FleetWorkerOptions options;
  options.dir = dir;
  options.worker_id = 0;
  options.import_every = 16;  // aggressive: stress the self-import no-op path
  Result<FleetWorkerOutcome> outcome = RunFleetWorker(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->jobs_completed, 1);
  EXPECT_FALSE(outcome->crashed);
  // The worker published its accepted seeds and imported only duplicates of
  // its own publications — every import was deduped to a no-op.
  EXPECT_GT(outcome->seeds_published, 0u);
  EXPECT_EQ(outcome->corpus_rejects, 0u);

  EXPECT_EQ(SummaryFromDoneRecords(paths), reference_summary);
}

TEST(FleetServiceTest, SecondFleetImportsSharedCorpusSeeds) {
  CampaignMatrix matrix = TestMatrix(/*seeds=*/1);
  std::string dir_a = FreshDir("share_a");
  std::string dir_b = FreshDir("share_b");
  std::string corpus = FreshDir("share_corpus");

  FleetPaths paths_a = FleetPaths::At(dir_a);
  ASSERT_TRUE(StageFleetJobs(paths_a, matrix, 0).ok());
  FleetWorkerOptions options_a;
  options_a.dir = dir_a;
  options_a.corpus_dir = corpus;
  options_a.worker_id = 0;
  Result<FleetWorkerOutcome> outcome_a = RunFleetWorker(options_a);
  ASSERT_TRUE(outcome_a.ok()) << outcome_a.status().ToString();
  ASSERT_GT(outcome_a->seeds_published, 0u);

  // A different campaign (different matrix seed -> different sequences)
  // sharing the corpus: worker B must pick up worker A's seeds.
  CampaignMatrix matrix_b = matrix;
  matrix_b.matrix_seed = 99;
  FleetPaths paths_b = FleetPaths::At(dir_b);
  ASSERT_TRUE(StageFleetJobs(paths_b, matrix_b, 0).ok());
  FleetWorkerOptions options_b;
  options_b.dir = dir_b;
  options_b.corpus_dir = corpus;
  options_b.worker_id = 1;
  options_b.import_every = 8;
  Result<FleetWorkerOutcome> outcome_b = RunFleetWorker(options_b);
  ASSERT_TRUE(outcome_b.ok()) << outcome_b.status().ToString();
  EXPECT_GT(outcome_b->seeds_imported, 0u);
  EXPECT_EQ(outcome_b->corpus_rejects, 0u);
}

TEST(FleetServiceTest, CrashedWorkerResumesFromCheckpointExactlyOnce) {
  CampaignMatrix matrix = TestMatrix(/*seeds=*/2);

  // Reference fleet: same matrix, no crash.
  std::string ref_dir = FreshDir("crash_ref");
  FleetPaths ref_paths = FleetPaths::At(ref_dir);
  ASSERT_TRUE(StageFleetJobs(ref_paths, matrix, 500).ok());
  FleetWorkerOptions ref_options;
  ref_options.dir = ref_dir;
  ref_options.worker_id = 0;
  Result<FleetWorkerOutcome> ref_outcome = RunFleetWorker(ref_options);
  ASSERT_TRUE(ref_outcome.ok());
  ASSERT_EQ(ref_outcome->jobs_completed, 2);
  std::string reference_summary = SummaryFromDoneRecords(ref_paths);

  // Crashing fleet: first incarnation halts after one checkpoint of its
  // first job, leaving the claim orphaned.
  std::string dir = FreshDir("crash");
  FleetPaths paths = FleetPaths::At(dir);
  ASSERT_TRUE(StageFleetJobs(paths, matrix, 500).ok());
  FleetWorkerOptions options;
  options.dir = dir;
  options.worker_id = 0;
  options.halt_after_checkpoints = 1;
  Result<FleetWorkerOutcome> crashed = RunFleetWorker(options);
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  EXPECT_TRUE(crashed->crashed);
  EXPECT_EQ(crashed->jobs_completed, 0);
  // The claim survives the crash; no done record exists yet.
  EXPECT_EQ(CountQueueEntries(paths).claimed, 1u);
  EXPECT_EQ(CountQueueEntries(paths).done, 0u);

  // Restarted incarnation: re-adopts the orphan, resumes from the
  // checkpoint, finishes the queue.
  FleetWorkerOptions restart = options;
  restart.halt_after_checkpoints = 0;
  Result<FleetWorkerOutcome> resumed = RunFleetWorker(restart);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->crashed);
  EXPECT_EQ(resumed->jobs_completed, 2);
  EXPECT_EQ(CountQueueEntries(paths).claimed, 0u);
  EXPECT_EQ(CountQueueEntries(paths).done, 2u);

  // Exactly-once accounting: crash + resume changed nothing observable.
  EXPECT_EQ(SummaryFromDoneRecords(paths), reference_summary);
}

TEST(FleetServiceTest, RestagingSkipsFinishedJobs) {
  CampaignMatrix matrix = TestMatrix(/*seeds=*/2);
  std::string dir = FreshDir("restage");
  FleetPaths paths = FleetPaths::At(dir);
  ASSERT_TRUE(StageFleetJobs(paths, matrix, 0).ok());
  ASSERT_EQ(CountQueueEntries(paths).queued, 2u);

  FleetWorkerOptions options;
  options.dir = dir;
  options.worker_id = 0;
  ASSERT_TRUE(RunFleetWorker(options).ok());
  ASSERT_EQ(CountQueueEntries(paths).done, 2u);

  // Re-staging the same matrix over the finished directory stages nothing.
  ASSERT_TRUE(StageFleetJobs(paths, matrix, 0).ok());
  EXPECT_EQ(CountQueueEntries(paths).queued, 0u);
}

TEST(FleetServiceTest, JobSpecAndDoneRecordRoundTrip) {
  std::string dir = FreshDir("specs");
  CampaignJob job;
  job.index = 7;
  job.strategy = "Themis";
  job.repetition = 2;
  job.config.flavor = Flavor::kCeph;
  job.config.seed = 4242;
  job.config.budget = Hours(3);
  job.config.checkpoint_dir = "/some/ckpt";
  job.config.checkpoint_every_ops = 1000;
  job.config.resume = true;
  job.config.collect_telemetry = true;
  std::string spec_path = (fs::path(dir) / QueueJobFileName(job.index)).string();
  ASSERT_TRUE(WriteJobSpecFile(spec_path, job).ok());
  Result<CampaignJob> loaded = ReadJobSpecFile(spec_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index, job.index);
  EXPECT_EQ(loaded->strategy, job.strategy);
  EXPECT_EQ(loaded->repetition, job.repetition);
  EXPECT_EQ(loaded->config.flavor, job.config.flavor);
  EXPECT_EQ(loaded->config.seed, job.config.seed);
  EXPECT_EQ(loaded->config.budget, job.config.budget);
  EXPECT_EQ(loaded->config.checkpoint_dir, job.config.checkpoint_dir);
  EXPECT_EQ(loaded->config.checkpoint_every_ops,
            job.config.checkpoint_every_ops);
  EXPECT_TRUE(loaded->config.resume);
  EXPECT_TRUE(loaded->config.collect_telemetry);

  // A corrupt spec is a loud error, not a silently skipped job.
  {
    std::fstream file(spec_path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(30);
    file.put('\xff');
  }
  EXPECT_FALSE(ReadJobSpecFile(spec_path).ok());
}

}  // namespace
}  // namespace themis
