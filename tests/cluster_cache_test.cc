// Differential oracle for the incremental load-accounting layer: after every
// randomized mutation step (op execution, fault interleavings, rebalance
// rounds, background time), every cached aggregate must equal a from-scratch
// brute-force recomputation over the raw brick/node state — exactly, not
// approximately. All the aggregates are integer running sums, so even the
// derived doubles (fractions, imbalance spread) must be bit-identical; any
// EXPECT_EQ tolerance here would also be a hole in the --jobs determinism
// guarantee (tests/determinism_test.cc).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/faults/injector.h"

namespace themis {
namespace {

// Everything below recomputes the aggregates the way the pre-cache code did:
// full walks over bricks()/storage_nodes(), no shared intermediate state.

std::vector<BrickId> BruteServingBricks(const DfsCluster& dfs) {
  std::vector<BrickId> out;
  for (const auto& [id, brick] : dfs.bricks()) {
    if (!brick.online) {
      continue;
    }
    const StorageNode* node = dfs.FindStorageNode(brick.node);
    if (node != nullptr && node->Serving()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<NodeId> BruteServingStorageNodeIds(const DfsCluster& dfs) {
  std::vector<NodeId> out;
  for (const auto& [id, node] : dfs.storage_nodes()) {
    if (node.Serving()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<NodeId> BruteServingMetaNodeIds(const DfsCluster& dfs) {
  std::vector<NodeId> out;
  for (const auto& [id, node] : dfs.meta_nodes()) {
    if (node.Serving()) {
      out.push_back(id);
    }
  }
  return out;
}

uint64_t BruteTotalCapacityBytes(const DfsCluster& dfs) {
  uint64_t total = 0;
  for (BrickId id : BruteServingBricks(dfs)) {
    total += dfs.FindBrick(id)->capacity_bytes;
  }
  return total;
}

uint64_t BruteTotalUsedBytes(const DfsCluster& dfs) {
  uint64_t total = 0;
  for (const auto& [id, brick] : dfs.bricks()) {
    (void)id;
    total += brick.used_bytes;
  }
  return total;
}

uint64_t BruteTotalServingUsedBytes(const DfsCluster& dfs) {
  uint64_t total = 0;
  for (BrickId id : BruteServingBricks(dfs)) {
    total += dfs.FindBrick(id)->used_bytes;
  }
  return total;
}

uint64_t BruteFreeSpaceBytes(const DfsCluster& dfs) {
  uint64_t capacity = 0;
  uint64_t used = 0;
  for (BrickId id : BruteServingBricks(dfs)) {
    const Brick* brick = dfs.FindBrick(id);
    capacity += brick->capacity_bytes;
    used += std::min(brick->used_bytes, brick->capacity_bytes);
  }
  return capacity - used;
}

std::vector<double> BrutePerNodeUsedBytes(const DfsCluster& dfs) {
  std::vector<double> out;
  for (const auto& [id, node] : dfs.storage_nodes()) {
    (void)id;
    if (!node.Serving()) {
      continue;
    }
    uint64_t used = 0;
    for (BrickId b : node.bricks) {
      const Brick* brick = dfs.FindBrick(b);
      if (brick != nullptr) {
        used += brick->used_bytes;
      }
    }
    out.push_back(static_cast<double>(used));
  }
  return out;
}

std::vector<double> BrutePerNodeUsedFraction(const DfsCluster& dfs) {
  std::vector<double> out;
  for (const auto& [id, node] : dfs.storage_nodes()) {
    (void)id;
    if (!node.Serving()) {
      continue;
    }
    uint64_t used = 0;
    uint64_t capacity = 0;
    for (BrickId b : node.bricks) {
      const Brick* brick = dfs.FindBrick(b);
      if (brick != nullptr && brick->online) {
        used += brick->used_bytes;
        capacity += brick->capacity_bytes;
      }
    }
    if (capacity > 0) {
      out.push_back(static_cast<double>(used) / static_cast<double>(capacity));
    }
  }
  return out;
}

double BruteStorageImbalance(const DfsCluster& dfs) {
  std::vector<double> fractions = BrutePerNodeUsedFraction(dfs);
  if (fractions.size() < 2) {
    return 0.0;
  }
  uint64_t used = 0;
  uint64_t capacity = 0;
  for (BrickId id : BruteServingBricks(dfs)) {
    const Brick* brick = dfs.FindBrick(id);
    used += brick->used_bytes;
    capacity += brick->capacity_bytes;
  }
  if (capacity == 0) {
    return 0.0;
  }
  double fleet = static_cast<double>(used) / static_cast<double>(capacity);
  double max_fraction = *std::max_element(fractions.begin(), fractions.end());
  return std::max(0.0, max_fraction - fleet);
}

void CheckAggregates(const DfsCluster& dfs, int step, const char* context) {
  // Exact equality throughout: every cached quantity is derived from integer
  // sums, so bit-identity with the brute-force recomputation is required.
  EXPECT_EQ(dfs.ServingBricks(), BruteServingBricks(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.ServingStorageNodeIds(), BruteServingStorageNodeIds(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.ListMetaNodes(), BruteServingMetaNodeIds(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.TotalCapacityBytes(), BruteTotalCapacityBytes(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.TotalUsedBytes(), BruteTotalUsedBytes(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.TotalServingUsedBytes(), BruteTotalServingUsedBytes(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.FreeSpaceBytes(), BruteFreeSpaceBytes(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.PerNodeUsedBytes(), BrutePerNodeUsedBytes(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.PerNodeUsedFraction(), BrutePerNodeUsedFraction(dfs))
      << context << " step " << step;
  EXPECT_EQ(dfs.StorageImbalance(), BruteStorageImbalance(dfs))
      << context << " step " << step;
  // The monitor's per-node samples ride on the same aggregates.
  for (const LoadSample& sample : dfs.SampleLoad()) {
    if (!sample.is_storage) {
      continue;
    }
    const StorageNode* node = dfs.FindStorageNode(sample.node);
    ASSERT_NE(node, nullptr);
    uint64_t used = 0;
    uint64_t capacity = 0;
    for (BrickId b : node->bricks) {
      const Brick* brick = dfs.FindBrick(b);
      if (brick != nullptr && brick->online) {
        used += brick->used_bytes;
        capacity += brick->capacity_bytes;
      }
    }
    EXPECT_EQ(sample.used_bytes, used)
        << context << " step " << step << " node " << sample.node;
    EXPECT_EQ(sample.capacity_bytes, capacity)
        << context << " step " << step << " node " << sample.node;
  }
}

struct CacheCase {
  Flavor flavor;
  bool with_faults;
  uint64_t seed;
  int steps;
};

class ClusterCacheTest : public ::testing::TestWithParam<CacheCase> {};

TEST_P(ClusterCacheTest, CachedAggregatesMatchBruteForce) {
  const CacheCase& param = GetParam();
  std::unique_ptr<DfsCluster> dfs = MakeCluster(param.flavor, param.seed);
  std::vector<FaultSpec> faults;
  if (param.with_faults) {
    faults = NewBugsFor(param.flavor);
    std::vector<FaultSpec> historical = HistoricalFaultsFor(param.flavor);
    faults.insert(faults.end(), historical.begin(), historical.end());
  }
  FaultInjector injector(faults, param.seed);
  dfs->set_fault_hooks(&injector);

  Rng rng(param.seed);
  InputModel model;
  model.SyncFromDfs(*dfs);
  OpSeqGenerator generator(model);
  CheckAggregates(*dfs, -1, "initial");
  for (int step = 0; step < param.steps; ++step) {
    Operation op = generator.GenerateOp(rng);
    OpResult result = dfs->Execute(op);
    model.Observe(op, result);
    if (step % 50 == 0) {
      model.SyncFromDfs(*dfs);
    }
    // Interleave the non-op mutation sources the way a campaign does:
    // explicit rebalance triggers and background (migration/GC) time.
    if (step % 97 == 96) {
      (void)dfs->TriggerRebalance();
    }
    if (step % 13 == 12) {
      dfs->AdvanceTime(Seconds(30));
    }
    CheckAggregates(*dfs, step, "mid-stream");
    if (HasFailure()) {
      ADD_FAILURE() << "diverged at step " << step << " op " << op.ToString();
      return;
    }
  }
  // Drain all background work, then re-check the settled state.
  (void)dfs->TriggerRebalance();
  for (int i = 0; i < 2000 && !dfs->RebalanceDone(); ++i) {
    dfs->AdvanceTime(Seconds(10));
  }
  CheckAggregates(*dfs, param.steps, "drained");
}

// 4 flavors x {healthy, faulty} x 1500 steps = 12000 randomized mutation
// steps, each followed by a full differential check.
INSTANTIATE_TEST_SUITE_P(
    AllFlavors, ClusterCacheTest,
    ::testing::Values(CacheCase{Flavor::kGluster, false, 51, 1500},
                      CacheCase{Flavor::kGluster, true, 52, 1500},
                      CacheCase{Flavor::kHdfs, false, 61, 1500},
                      CacheCase{Flavor::kHdfs, true, 62, 1500},
                      CacheCase{Flavor::kCeph, false, 71, 1500},
                      CacheCase{Flavor::kCeph, true, 72, 1500},
                      CacheCase{Flavor::kLeo, false, 81, 1500},
                      CacheCase{Flavor::kLeo, true, 82, 1500}),
    [](const ::testing::TestParamInfo<CacheCase>& info) {
      std::string name(FlavorName(info.param.flavor));
      name += info.param.with_faults ? "_faulty" : "_healthy";
      name += "_s" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace themis
