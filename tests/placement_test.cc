// Unit + property tests for the five placement algorithms.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/dfs/placement/crush_map.h"
#include "src/dfs/placement/dht_layout.h"
#include "src/dfs/placement/geo_tree.h"
#include "src/dfs/placement/hash_ring.h"
#include "src/dfs/placement/weighted_tree.h"

namespace themis {
namespace {

// ---- HashRing ----

TEST(HashRing, EmptyRingLocatesNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.Locate(123, 2).empty());
  EXPECT_EQ(ring.Primary(123), kInvalidBrick);
}

TEST(HashRing, LocateReturnsDistinctTargets) {
  HashRing ring(32);
  for (BrickId b = 1; b <= 5; ++b) {
    ring.AddTarget(b);
  }
  for (uint64_t key = 0; key < 200; ++key) {
    std::vector<BrickId> located = ring.Locate(Mix64(key), 3);
    ASSERT_EQ(located.size(), 3u);
    std::set<BrickId> unique(located.begin(), located.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(HashRing, ReplicasCappedByTargetCount) {
  HashRing ring;
  ring.AddTarget(1);
  ring.AddTarget(2);
  EXPECT_EQ(ring.Locate(99, 5).size(), 2u);
}

TEST(HashRing, AddTargetIsIdempotent) {
  HashRing ring(16);
  ring.AddTarget(7);
  int vnodes = ring.VnodeCount(7);
  ring.AddTarget(7);
  EXPECT_EQ(ring.VnodeCount(7), vnodes);
}

TEST(HashRing, RemoveTargetMovesOnlyItsArcs) {
  // Consistent-hashing property: removing a target only remaps keys that
  // were on the removed target.
  HashRing ring(64);
  for (BrickId b = 1; b <= 8; ++b) {
    ring.AddTarget(b);
  }
  std::map<uint64_t, BrickId> before;
  for (uint64_t key = 0; key < 500; ++key) {
    before[key] = ring.Primary(Mix64(key));
  }
  ring.RemoveTarget(4);
  int moved = 0;
  for (const auto& [key, primary] : before) {
    BrickId now = ring.Primary(Mix64(key));
    if (primary == 4) {
      EXPECT_NE(now, 4u);
    } else {
      EXPECT_EQ(now, primary) << "key not on removed target was remapped";
    }
    if (now != primary) {
      ++moved;
    }
  }
  // Roughly 1/8 of the keys should have moved.
  EXPECT_GT(moved, 20);
  EXPECT_LT(moved, 140);
}

TEST(HashRing, WeightScalesShare) {
  HashRing ring(64);
  ring.AddTarget(1, 1.0);
  ring.AddTarget(2, 4.0);
  int heavy = 0;
  const int kKeys = 4000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (ring.Primary(Mix64(key)) == 2) {
      ++heavy;
    }
  }
  double share = static_cast<double>(heavy) / kKeys;
  EXPECT_GT(share, 0.65);
  EXPECT_LT(share, 0.92);
}

TEST(HashRing, BalancedDistribution) {
  HashRing ring(64);
  for (BrickId b = 1; b <= 4; ++b) {
    ring.AddTarget(b);
  }
  std::map<BrickId, int> counts;
  const int kKeys = 8000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    ++counts[ring.Primary(Mix64(key))];
  }
  for (const auto& [brick, count] : counts) {
    EXPECT_GT(count, kKeys / 8) << "target " << brick << " starved";
    EXPECT_LT(count, kKeys / 2) << "target " << brick << " dominates";
  }
}

// ---- CrushMap ----

TEST(CrushMap, DeterministicMapping) {
  CrushMap crush(128);
  crush.SetTargetWeight(1, 1.0);
  crush.SetTargetWeight(2, 1.0);
  crush.SetTargetWeight(3, 1.0);
  for (uint32_t pg = 0; pg < 128; ++pg) {
    EXPECT_EQ(crush.RawMap(pg, 2), crush.RawMap(pg, 2));
  }
}

TEST(CrushMap, MapsDistinctReplicas) {
  CrushMap crush(64);
  for (BrickId b = 1; b <= 6; ++b) {
    crush.SetTargetWeight(b, 1.0);
  }
  for (uint32_t pg = 0; pg < 64; ++pg) {
    std::vector<BrickId> mapped = crush.RawMap(pg, 3);
    ASSERT_EQ(mapped.size(), 3u);
    std::set<BrickId> unique(mapped.begin(), mapped.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(CrushMap, WeightProportionalPgShare) {
  CrushMap crush(2048);
  crush.SetTargetWeight(1, 1.0);
  crush.SetTargetWeight(2, 3.0);
  int heavy = 0;
  for (uint32_t pg = 0; pg < 2048; ++pg) {
    if (crush.RawMap(pg, 1).front() == 2) {
      ++heavy;
    }
  }
  EXPECT_NEAR(heavy / 2048.0, 0.75, 0.06);
}

TEST(CrushMap, WeightChangeMovesProportionalShare) {
  CrushMap crush(1024);
  for (BrickId b = 1; b <= 5; ++b) {
    crush.SetTargetWeight(b, 1.0);
  }
  std::map<uint32_t, BrickId> before;
  for (uint32_t pg = 0; pg < 1024; ++pg) {
    before[pg] = crush.RawMap(pg, 1).front();
  }
  crush.SetTargetWeight(5, 2.0);  // double one target's weight
  int moved = 0;
  for (const auto& [pg, primary] : before) {
    if (crush.RawMap(pg, 1).front() != primary) {
      ++moved;
    }
  }
  // Only pgs gained by the heavier target move (about 1/6 of the space);
  // nothing else reshuffles.
  EXPECT_GT(moved, 60);
  EXPECT_LT(moved, 350);
}

TEST(CrushMap, UpmapOverridesPrimary) {
  CrushMap crush(64);
  crush.SetTargetWeight(1, 1.0);
  crush.SetTargetWeight(2, 1.0);
  crush.SetTargetWeight(3, 1.0);
  crush.Upmap(10, 3);
  EXPECT_EQ(crush.Map(10, 2).front(), 3u);
  crush.ClearUpmap(10);
  EXPECT_EQ(crush.Map(10, 2), crush.RawMap(10, 2));
}

TEST(CrushMap, StaleUpmapIgnoredAfterTargetRemoval) {
  CrushMap crush(64);
  crush.SetTargetWeight(1, 1.0);
  crush.SetTargetWeight(2, 1.0);
  crush.Upmap(5, 2);
  crush.RemoveTarget(2);
  std::vector<BrickId> mapped = crush.Map(5, 1);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped.front(), 1u);
  EXPECT_EQ(crush.upmap_count(), 0u);
}

TEST(CrushMap, RemovingWeightRemovesTarget) {
  CrushMap crush(64);
  crush.SetTargetWeight(1, 1.0);
  crush.SetTargetWeight(1, 0.0);
  EXPECT_FALSE(crush.HasTarget(1));
  EXPECT_TRUE(crush.RawMap(3, 1).empty());
}

// ---- DhtLayout ----

TEST(DhtLayout, CoversFullHashSpace) {
  DhtLayout layout;
  layout.Recompute({{1, 100.0}, {2, 100.0}, {3, 100.0}});
  ASSERT_EQ(layout.ranges().size(), 3u);
  EXPECT_EQ(layout.ranges().front().start, 0u);
  EXPECT_EQ(layout.ranges().back().end, 0xffffffffu);
  for (size_t i = 1; i < layout.ranges().size(); ++i) {
    EXPECT_EQ(layout.ranges()[i].start, layout.ranges()[i - 1].end + 1);
  }
}

TEST(DhtLayout, RangesProportionalToWeight) {
  DhtLayout layout;
  layout.Recompute({{1, 300.0}, {2, 100.0}});
  double share1 = static_cast<double>(layout.ranges()[0].end) / 4294967295.0;
  EXPECT_NEAR(share1, 0.75, 0.01);
}

TEST(DhtLayout, LocateIsStableAcrossIdenticalRecompute) {
  DhtLayout layout;
  layout.Recompute({{1, 100.0}, {2, 100.0}});
  BrickId before = layout.Locate(12345);
  uint64_t generation = layout.generation();
  layout.Recompute({{1, 100.0}, {2, 100.0}});
  EXPECT_EQ(layout.Locate(12345), before);
  EXPECT_EQ(layout.generation(), generation + 1);
}

TEST(DhtLayout, ZeroWeightBricksGetNoRange) {
  DhtLayout layout;
  layout.Recompute({{1, 100.0}, {2, 0.0}, {3, 100.0}});
  for (const DhtRange& range : layout.ranges()) {
    EXPECT_NE(range.brick, 2u);
  }
}

TEST(DhtLayout, EmptyLayout) {
  DhtLayout layout;
  EXPECT_TRUE(layout.empty());
  EXPECT_EQ(layout.Locate(1), kInvalidBrick);
  layout.Recompute({});
  EXPECT_TRUE(layout.empty());
}

TEST(DhtLayout, HashNameDeterministicAndSpread) {
  EXPECT_EQ(DhtLayout::HashName("/a/b"), DhtLayout::HashName("/a/b"));
  EXPECT_NE(DhtLayout::HashName("/a/b"), DhtLayout::HashName("/a/c"));
  // Names spread roughly evenly over two equal ranges.
  DhtLayout layout;
  layout.Recompute({{1, 1.0}, {2, 1.0}});
  int first = 0;
  for (int i = 0; i < 2000; ++i) {
    if (layout.Locate(DhtLayout::HashName("/f" + std::to_string(i))) == 1) {
      ++first;
    }
  }
  EXPECT_NEAR(first / 2000.0, 0.5, 0.06);
}

// ---- WeightedTree ----

TEST(WeightedTree, SortsLightToHeavy) {
  WeightedTree tree(10);
  tree.Insert({1, 0.95});
  tree.Insert({2, 0.05});
  tree.Insert({3, 0.55});
  Rng rng(1);
  std::vector<BrickId> sorted = tree.SortByLoad(rng);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], 2u);
  EXPECT_EQ(sorted[1], 3u);
  EXPECT_EQ(sorted[2], 1u);
}

TEST(WeightedTree, ShufflesWithinEqualBuckets) {
  // Nodes with the same weight must share placements (Collections.shuffle).
  WeightedTree tree(10);
  for (BrickId b = 1; b <= 6; ++b) {
    tree.Insert({b, 0.5});
  }
  Rng rng(2);
  std::map<BrickId, int> first_counts;
  for (int i = 0; i < 600; ++i) {
    ++first_counts[tree.ChooseLeastLoaded(1, rng).front()];
  }
  for (BrickId b = 1; b <= 6; ++b) {
    EXPECT_GT(first_counts[b], 30) << "target " << b << " never chosen first";
  }
}

TEST(WeightedTree, ChooseLeastLoadedTruncates) {
  WeightedTree tree;
  tree.Insert({1, 0.2});
  tree.Insert({2, 0.8});
  Rng rng(3);
  EXPECT_EQ(tree.ChooseLeastLoaded(1, rng).size(), 1u);
  EXPECT_EQ(tree.ChooseLeastLoaded(5, rng).size(), 2u);
}

TEST(WeightedTree, ClearEmptiesTree) {
  WeightedTree tree;
  tree.Insert({1, 0.5});
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  Rng rng(4);
  EXPECT_TRUE(tree.SortByLoad(rng).empty());
}

TEST(WeightedTree, ClampsOutOfRangeFractions) {
  WeightedTree tree(10);
  tree.Insert({1, -0.5});
  tree.Insert({2, 1.5});
  Rng rng(5);
  std::vector<BrickId> sorted = tree.SortByLoad(rng);
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0], 1u);  // clamped to lightest bucket
  EXPECT_EQ(sorted[1], 2u);  // clamped to heaviest bucket
}

// ---- GeoTreeEngine ----

TEST(GeoTree, FewestFirstAdmissionBalancesSitesAndRacks) {
  GeoTreeEngine engine(3, 4, 16);
  for (NodeId id = 0; id < 48; ++id) {
    engine.AssignNode(id);
  }
  EXPECT_EQ(engine.node_count(), 48u);
  for (uint16_t site = 0; site < 3; ++site) {
    EXPECT_EQ(engine.SiteNodeCount(site), 16u) << "site " << site;
  }
  // Racks fill evenly within each site: 16 nodes over 4 racks.
  std::map<std::pair<uint16_t, uint16_t>, int> rack_counts;
  for (NodeId id = 0; id < 48; ++id) {
    ASSERT_TRUE(engine.Contains(id));
    GeoTag tag = engine.TagOf(id);
    ++rack_counts[{tag.site, tag.rack}];
  }
  for (const auto& [rack, count] : rack_counts) {
    EXPECT_EQ(count, 4) << "site " << rack.first << " rack " << rack.second;
  }
  // Groups span sites: every full group holds members from all three.
  for (uint32_t group = 0; group < engine.group_count(); ++group) {
    std::set<uint16_t> sites;
    for (NodeId id : engine.GroupMembers(group)) {
      sites.insert(engine.TagOf(id).site);
    }
    EXPECT_EQ(sites.size(), 3u) << "group " << group;
  }
}

TEST(GeoTree, RemovalFreesTheSlotForTheNextAdmission) {
  GeoTreeEngine engine(3, 4, 16);
  for (NodeId id = 0; id < 9; ++id) {
    engine.AssignNode(id);
  }
  GeoTag victim_tag = engine.TagOf(4);
  engine.RemoveNode(4);
  EXPECT_FALSE(engine.Contains(4));
  EXPECT_EQ(engine.node_count(), 8u);
  // The vacated site is now the fewest-populated, so the next admission
  // lands exactly where the victim sat.
  engine.AssignNode(100);
  EXPECT_EQ(engine.TagOf(100).site, victim_tag.site);
  EXPECT_EQ(engine.TagOf(100).rack, victim_tag.rack);
}

TEST(GeoTree, RestoreReproducesAssignmentAndFutureHistory) {
  GeoTreeEngine original(3, 4, 8);
  for (NodeId id = 0; id < 30; ++id) {
    original.AssignNode(id);
  }
  original.RemoveNode(7);
  original.RemoveNode(19);

  GeoTreeEngine restored(3, 4, 8);
  for (NodeId id = 0; id < 30; ++id) {
    if (original.Contains(id)) {
      restored.RestoreNode(id, original.TagOf(id), original.GroupOf(id));
    }
  }
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.group_count(), original.group_count());
  for (NodeId id = 0; id < 30; ++id) {
    ASSERT_EQ(restored.Contains(id), original.Contains(id)) << id;
    if (!original.Contains(id)) continue;
    EXPECT_EQ(restored.TagOf(id).site, original.TagOf(id).site) << id;
    EXPECT_EQ(restored.TagOf(id).rack, original.TagOf(id).rack) << id;
    EXPECT_EQ(restored.GroupOf(id), original.GroupOf(id)) << id;
  }
  // History-dependence survives the round trip: both engines admit the next
  // node identically.
  uint32_t group_a = original.AssignNode(500);
  uint32_t group_b = restored.AssignNode(500);
  EXPECT_EQ(group_a, group_b);
  EXPECT_EQ(original.TagOf(500).site, restored.TagOf(500).site);
  EXPECT_EQ(original.TagOf(500).rack, restored.TagOf(500).rack);
}

TEST(GeoTree, ClearEmptiesEverything) {
  GeoTreeEngine engine(2, 2, 4);
  for (NodeId id = 0; id < 10; ++id) {
    engine.AssignNode(id);
  }
  engine.Clear();
  EXPECT_EQ(engine.node_count(), 0u);
  EXPECT_EQ(engine.group_count(), 0u);
  EXPECT_FALSE(engine.Contains(0));
  // Admission restarts from a blank history.
  engine.AssignNode(3);
  EXPECT_EQ(engine.TagOf(3).site, 0);
  EXPECT_EQ(engine.GroupOf(3), 0u);
}

}  // namespace
}  // namespace themis
