// Mid-rebalance crash/recovery double-check (DESIGN.md §14): for every
// flavor, crashing the balancer in the middle of a rebalance round and
// letting it restart from persisted state must converge to the same
// load-balancing verdict as the uninterrupted twin run. The differential
// oracle is the unit-level form of the detector's kCrashRecovery dimension:
// a flavor whose recovery diverges here is exactly what that failure kind
// exists to flag.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/dfs/flavors/ceph_like.h"
#include "src/dfs/flavors/factory.h"
#include "src/dfs/flavors/gluster_like.h"
#include "src/dfs/flavors/hdfs_like.h"
#include "src/dfs/flavors/leo_like.h"
#include "src/faults/env_fault.h"
#include "src/monitor/detector.h"

namespace themis {
namespace {

// Deterministic heavy load, then a capacity squeeze on one brick so the
// next rebalance round has a real donor with many chunks to move — the
// window the crash must land inside.
void PopulateAndSkew(DfsCluster& dfs) {
  for (int i = 0; i < 80; ++i) {
    Operation op;
    op.kind = OpKind::kCreate;
    op.path = "/load-" + std::to_string(i);
    op.size = 6 * kGiB;
    dfs.Execute(op);
  }
  Operation shrink;
  shrink.kind = OpKind::kReduceVolume;
  shrink.brick = dfs.bricks().begin()->first;
  shrink.size = 0;  // default delta: shrink by a quarter
  for (int i = 0; i < 3; ++i) {
    dfs.Execute(shrink);
  }
}

Operation EnvOp(OpKind kind, NodeId node, uint64_t size) {
  Operation op;
  op.kind = kind;
  op.node = node;
  op.size = size;
  return op;
}

// Drives a cluster until the balancer has fully settled: no active round, no
// queued moves, no crashed balancer, no pending env recovery.
bool Settle(DfsCluster& dfs, int max_steps = 2000) {
  for (int i = 0; i < max_steps; ++i) {
    if (dfs.RebalanceDone() && !dfs.EnvRecoveryPending()) {
      return true;
    }
    dfs.AdvanceTime(Seconds(10));
  }
  return false;
}

struct RecoveryOutcome {
  bool settled = false;
  bool balanced = false;        // the LBS verdict
  double imbalance = 0.0;
  int rounds = 0;
};

// One run of the crash-recovery scenario. `crash` selects the twin: the
// uninterrupted control or the run whose balancer dies mid-rebalance and
// restarts `restart_delay_s` later.
RecoveryOutcome RunScenario(Flavor flavor, uint64_t seed, bool crash,
                            uint64_t restart_delay_s = 300) {
  std::unique_ptr<DfsCluster> cluster = MakeCluster(flavor, seed);
  EnvFaultInjector injector(seed ^ 0xc4a5eULL);
  cluster->set_env_faults(&injector);
  PopulateAndSkew(*cluster);
  cluster->TriggerRebalance();
  // Let the round make some progress so the crash lands mid-flight.
  cluster->AdvanceTime(Seconds(15));
  if (crash) {
    NodeId meta = cluster->ListMetaNodes().front();
    EXPECT_TRUE(
        cluster->Execute(EnvOp(OpKind::kEnvCrashNode, meta, restart_delay_s))
            .status.ok());
    EXPECT_TRUE(cluster->balancer_crashed());
  }
  RecoveryOutcome outcome;
  outcome.settled = Settle(*cluster);
  outcome.balanced =
      cluster->StorageImbalance() <= cluster->config().native_threshold;
  outcome.imbalance = cluster->StorageImbalance();
  outcome.rounds = cluster->completed_rebalance_rounds();
  EXPECT_FALSE(cluster->balancer_crashed());
  EXPECT_FALSE(cluster->balancer_resume_pending());
  return outcome;
}

class CrashRecoveryOracle : public testing::TestWithParam<Flavor> {};

TEST_P(CrashRecoveryOracle, RecoveredRunMatchesUninterruptedVerdict) {
  Flavor flavor = GetParam();
  RecoveryOutcome control = RunScenario(flavor, /*seed=*/11, /*crash=*/false);
  RecoveryOutcome recovered = RunScenario(flavor, /*seed=*/11, /*crash=*/true);
  ASSERT_TRUE(control.settled);
  ASSERT_TRUE(recovered.settled);
  // The paper's recovery contract: after restart, the balancer reaches the
  // same load-balanced-state verdict the uninterrupted balancer reaches. A
  // flavor breaking this equality is a kCrashRecovery failure.
  EXPECT_EQ(recovered.balanced, control.balanced)
      << "control " << control.imbalance << " vs recovered "
      << recovered.imbalance;
}

TEST_P(CrashRecoveryOracle, RecoveryIsDeterministic) {
  Flavor flavor = GetParam();
  RecoveryOutcome a = RunScenario(flavor, /*seed=*/23, /*crash=*/true);
  RecoveryOutcome b = RunScenario(flavor, /*seed=*/23, /*crash=*/true);
  ASSERT_TRUE(a.settled);
  EXPECT_EQ(a.settled, b.settled);
  EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.balanced, b.balanced);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, CrashRecoveryOracle,
                         testing::Values(Flavor::kGluster, Flavor::kHdfs,
                                         Flavor::kCeph, Flavor::kLeo),
                         [](const testing::TestParamInfo<Flavor>& param) {
                           return std::string(FlavorName(param.param));
                         });

// A crash while a round is active marks the round for resumption; the
// restart re-triggers it instead of abandoning the half-moved data.
TEST(CrashRecovery, InterruptedRoundResumesAfterRestart) {
  std::unique_ptr<DfsCluster> cluster = MakeCluster(Flavor::kGluster, /*seed=*/31);
  EnvFaultInjector injector(/*seed=*/31);
  cluster->set_env_faults(&injector);
  PopulateAndSkew(*cluster);
  ASSERT_TRUE(cluster->TriggerRebalance().ok());
  cluster->AdvanceTime(Seconds(15));
  ASSERT_FALSE(cluster->RebalanceDone()) << "round finished before the crash";
  NodeId meta = cluster->ListMetaNodes().front();
  ASSERT_TRUE(cluster->Execute(EnvOp(OpKind::kEnvCrashNode, meta, 120))
                  .status.ok());
  EXPECT_TRUE(cluster->balancer_crashed());
  EXPECT_TRUE(cluster->balancer_resume_pending());
  EXPECT_FALSE(cluster->RebalanceDone());
  int rounds_before = cluster->completed_rebalance_rounds();
  ASSERT_TRUE(Settle(*cluster));
  // The resumed round ran to completion after the restart.
  EXPECT_GT(cluster->completed_rebalance_rounds(), rounds_before);
  EXPECT_FALSE(cluster->balancer_resume_pending());
}

// Per-flavor restart-from-persisted-state semantics: every flavor counts the
// crash in its persisted census, and flavor-local recovery state stays sane.
template <typename ClusterT>
uint32_t CrashOnce(ClusterT& cluster) {
  EnvFaultInjector injector(/*seed=*/3);
  cluster.set_env_faults(&injector);
  NodeId meta = cluster.ListMetaNodes().front();
  EXPECT_TRUE(cluster.Execute(EnvOp(OpKind::kEnvCrashNode, meta, 60))
                  .status.ok());
  cluster.AdvanceTime(Seconds(120));
  EXPECT_FALSE(cluster.balancer_crashed());
  cluster.set_env_faults(nullptr);
  return cluster.balancer_crashes();
}

TEST(CrashRecovery, EveryFlavorCountsBalancerCrashes) {
  GlusterLikeCluster gluster;
  EXPECT_EQ(CrashOnce(gluster), 1u);
  HdfsLikeCluster hdfs;
  EXPECT_EQ(CrashOnce(hdfs), 1u);
  CephLikeCluster ceph;
  EXPECT_EQ(CrashOnce(ceph), 1u);
  LeoLikeCluster leo;
  EXPECT_EQ(CrashOnce(leo), 1u);
  // LeoFS reloads the ring from its persisted plantings on takeover: every
  // serving brick must still be planted after the restart.
  EXPECT_GT(leo.ring().target_count(), 0u);
}

TEST(CrashRecovery, CrashRecoveryIsItsOwnFailureDimension) {
  EXPECT_STREQ(ImbalanceDimensionName(ImbalanceDimension::kCrashRecovery),
               "crash-recovery");
  // And it is distinct from every pre-existing dimension name.
  EXPECT_STRNE(ImbalanceDimensionName(ImbalanceDimension::kCrashRecovery),
               ImbalanceDimensionName(ImbalanceDimension::kNodeHealth));
}

}  // namespace
}  // namespace themis
