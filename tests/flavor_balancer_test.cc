// Flavor-specific balancer behaviors: DHT migrate-data, ring takeover,
// CRUSH/upmap response, weighted-tree leveling — plus the shared rebalance
// API semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/dfs/flavors/ceph_like.h"
#include "src/dfs/flavors/factory.h"
#include "src/dfs/flavors/geo_like.h"
#include "src/dfs/flavors/gluster_like.h"
#include "src/dfs/flavors/hdfs_like.h"
#include "src/dfs/flavors/leo_like.h"

namespace themis {
namespace {

Operation Create(const std::string& path, uint64_t size) {
  Operation op;
  op.kind = OpKind::kCreate;
  op.path = path;
  op.size = size;
  return op;
}

void Drain(DfsCluster& dfs) {
  for (int i = 0; i < 5000 && !dfs.RebalanceDone(); ++i) {
    dfs.AdvanceTime(Seconds(10));
  }
  ASSERT_TRUE(dfs.RebalanceDone());
}

TEST(RebalanceApi, IdempotentWhenBalanced) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 71);
  EXPECT_TRUE(dfs->RebalanceDone());
  EXPECT_TRUE(dfs->TriggerRebalance().ok());
  EXPECT_TRUE(dfs->RebalanceDone()) << "empty plan completes immediately";
  EXPECT_EQ(dfs->completed_rebalance_rounds(), 1);
  EXPECT_EQ(dfs->rebalance_triggers(), 1u);
}

TEST(RebalanceApi, BackgroundMigrationTakesTime) {
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kHdfs, 72);
  // Write data, then shrink the cluster's balance by hand via volume churn.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(dfs->Execute(Create("/f" + std::to_string(i), 10 * kGiB)).status.ok());
  }
  // Skew: move bytes onto one brick directly.
  BrickId victim = dfs->ListBricks().front();
  for (BrickId donor : dfs->ListBricks()) {
    if (donor != victim) {
      dfs->SkewBytes(donor, victim, 40 * kGiB);
    }
  }
  ASSERT_GT(dfs->StorageImbalance(), dfs->config().native_threshold);
  ASSERT_TRUE(dfs->TriggerRebalance().ok());
  EXPECT_FALSE(dfs->RebalanceDone()) << "a non-trivial plan must take time";
  Drain(*dfs);
  EXPECT_LE(dfs->StorageImbalance(), dfs->config().native_threshold + 0.03);
}

TEST(GlusterBalancer, MigrateDataFollowsLayoutAfterExpansion) {
  GlusterLikeCluster dfs;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 8 * kGiB)).status.ok());
  }
  // Adding a storage node re-runs fix-layout; the rebalance must move data
  // whose hash now maps to the new brick onto it.
  Operation add;
  add.kind = OpKind::kAddStorageNode;
  ASSERT_TRUE(dfs.Execute(add).status.ok());
  BrickId fresh = dfs.ListBricks().back();
  ASSERT_EQ(dfs.FindBrick(fresh)->used_bytes, 0u);
  ASSERT_TRUE(dfs.TriggerRebalance().ok());
  Drain(dfs);
  EXPECT_GT(dfs.FindBrick(fresh)->used_bytes, 0u)
      << "fix-layout + migrate-data must populate the new brick";
  // And the moved files must now sit on their hashed bricks.
  int misplaced = 0;
  for (const auto& [file, layout] : dfs.file_layouts()) {
    std::string path = dfs.tree().PathOf(file);
    for (uint32_t i = 0; i < layout.chunks.size(); ++i) {
      if (layout.chunks[i].replicas.empty()) {
        continue;
      }
      uint32_t hash = DhtLayout::HashName(path) + i * 0x9e3779b9u;
      BrickId expected = dfs.layout().Locate(hash);
      if (!layout.chunks[i].HasReplicaOn(expected)) {
        ++misplaced;
      }
    }
  }
  // min-free-disk may legitimately leave a few in place; most must match.
  EXPECT_LT(misplaced, 20);
}

TEST(GlusterBalancer, RebalanceReconcilesLinkfiles) {
  GlusterLikeCluster dfs;
  ASSERT_TRUE(dfs.Execute(Create("/src", kGiB)).status.ok());
  // Force linkfiles via renames across ranges.
  int renames = 0;
  for (int i = 0; i < 64 && dfs.live_linkfiles() == 0; ++i) {
    Operation rename;
    rename.kind = OpKind::kRename;
    rename.path = renames == 0 ? "/src" : "/dst" + std::to_string(renames - 1);
    rename.path2 = "/dst" + std::to_string(renames);
    ASSERT_TRUE(dfs.Execute(rename).status.ok());
    ++renames;
  }
  ASSERT_GT(dfs.live_linkfiles(), 0u);
  ASSERT_TRUE(dfs.TriggerRebalance().ok());
  Drain(dfs);
  EXPECT_EQ(dfs.live_linkfiles(), 0u) << "a completed rebalance reclaims linkfiles";
}

TEST(LeoBalancer, RingChangeMovesAffectedObjects) {
  LeoLikeCluster dfs;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 8 * kGiB)).status.ok());
  }
  Operation add;
  add.kind = OpKind::kAddStorageNode;
  ASSERT_TRUE(dfs.Execute(add).status.ok());
  BrickId fresh = dfs.ListBricks().back();
  ASSERT_TRUE(dfs.TriggerRebalance().ok());
  Drain(dfs);
  EXPECT_GT(dfs.FindBrick(fresh)->used_bytes, 0u)
      << "the ring's new arcs must receive their objects";
}

TEST(CephBalancer, UpmapsAppearUnderSkew) {
  CephLikeCluster dfs;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 8 * kGiB)).status.ok());
  }
  BrickId victim = dfs.ListBricks().front();
  for (BrickId donor : dfs.ListBricks()) {
    if (donor != victim) {
      dfs.SkewBytes(donor, victim, 60 * kGiB);
    }
  }
  ASSERT_GT(dfs.StorageImbalance(), dfs.config().native_threshold);
  size_t upmaps_before = dfs.crush().upmap_count();
  ASSERT_TRUE(dfs.TriggerRebalance().ok());
  Drain(dfs);
  EXPECT_GT(dfs.crush().upmap_count(), upmaps_before)
      << "the upmap balancer pins PGs away from the overfull device";
  EXPECT_LE(dfs.StorageImbalance(), dfs.config().native_threshold + 0.03);
}

TEST(HdfsBalancer, LevelsWithinNativeThreshold) {
  HdfsLikeCluster dfs;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 6 * kGiB)).status.ok());
  }
  BrickId victim = dfs.ListBricks().front();
  for (BrickId donor : dfs.ListBricks()) {
    if (donor != victim) {
      dfs.SkewBytes(donor, victim, 30 * kGiB);
    }
  }
  ASSERT_GT(dfs.StorageImbalance(), 0.10);
  ASSERT_TRUE(dfs.TriggerRebalance().ok());
  Drain(dfs);
  EXPECT_LE(dfs.StorageImbalance(), 0.10 + 0.03)
      << "the HDFS balancer's contract is its 10% threshold";
}

TEST(PeriodicBalancer, FiresWithoutExplicitTrigger) {
  // The periodic discipline must notice imbalance on its own.
  std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, 77);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(dfs->Execute(Create("/f" + std::to_string(i), 10 * kGiB)).status.ok());
  }
  BrickId victim = dfs->ListBricks().front();
  for (BrickId donor : dfs->ListBricks()) {
    if (donor != victim) {
      dfs->SkewBytes(donor, victim, 50 * kGiB);
    }
  }
  ASSERT_GT(dfs->StorageImbalance(), dfs->config().native_threshold);
  int rounds_before = dfs->completed_rebalance_rounds();
  // Idle time beyond the balancer period; no client activity at all.
  dfs->AdvanceTime(dfs->config().balancer_period * 4);
  EXPECT_GT(dfs->completed_rebalance_rounds(), rounds_before);
  EXPECT_LE(dfs->StorageImbalance(), dfs->config().native_threshold + 0.03);
}

TEST(FlavorDefaults, MatchPaperThresholds) {
  EXPECT_DOUBLE_EQ(HdfsLikeCluster::DefaultConfig().native_threshold, 0.10);
  EXPECT_DOUBLE_EQ(GlusterLikeCluster::DefaultConfig().native_threshold, 0.20);
  EXPECT_LT(CephLikeCluster::DefaultConfig().native_threshold, 0.15);
  EXPECT_EQ(HdfsLikeCluster::DefaultConfig().initial_storage_nodes +
                HdfsLikeCluster::DefaultConfig().initial_meta_nodes,
            10)
      << "the paper's clusters have 10 nodes";
}

TEST(GeoBalancer, ReplicasSpreadAcrossSites) {
  GeoLikeCluster dfs;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 4 * kGiB)).status.ok());
  }
  // Every replicated chunk lands on bricks whose nodes sit on distinct
  // sites: the within-group pick runs a distinct-site pass first and a
  // fresh cluster never needs the capacity-constrained fill pass.
  size_t replicated = 0;
  for (const auto& [file, layout] : dfs.file_layouts()) {
    (void)file;
    for (const ChunkPlacement& chunk : layout.chunks) {
      if (chunk.replicas.size() < 2) continue;
      ++replicated;
      std::set<uint16_t> sites;
      for (BrickId brick : chunk.replicas) {
        const Brick* b = dfs.FindBrick(brick);
        ASSERT_NE(b, nullptr);
        ASSERT_TRUE(dfs.engine().Contains(b->node));
        sites.insert(dfs.engine().TagOf(b->node).site);
      }
      EXPECT_GE(sites.size(), 2u) << "chunk replicas co-located on one site";
    }
  }
  EXPECT_GT(replicated, 0u);
}

TEST(GeoBalancer, SiteFailoverDrainsTheHotSite) {
  // A compact tree so a hand-made skew dominates total capacity: 12 nodes
  // over 3 sites, 64 GiB base bricks (heterogeneous 1x/2x/4x on top).
  ClusterConfig config = GeoLikeCluster::DefaultConfig();
  config.initial_storage_nodes = 12;
  config.geo_racks_per_site = 2;
  config.geo_group_size = 4;
  config.brick_capacity = 64 * kGiB;
  config.rng_seed = 7;
  GeoLikeCluster dfs(config);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(dfs.Execute(Create("/f" + std::to_string(i), 8 * kGiB)).status.ok());
  }
  // Pile bytes from the other sites onto site 0's bricks.
  std::vector<BrickId> hot, cold;
  for (BrickId id : dfs.ListBricks()) {
    const Brick* brick = dfs.FindBrick(id);
    if (dfs.engine().TagOf(brick->node).site == 0) {
      hot.push_back(id);
    } else {
      cold.push_back(id);
    }
  }
  ASSERT_FALSE(hot.empty());
  ASSERT_FALSE(cold.empty());
  for (size_t i = 0; i < cold.size(); ++i) {
    dfs.SkewBytes(cold[i], hot[i % hot.size()], 32 * kGiB);
  }

  auto site_gap = [&]() {
    double hottest = 0.0, coldest = 1.0;
    for (const auto& [used, cap] : dfs.PerSiteUsedCap()) {
      if (cap == 0) continue;
      double frac = static_cast<double>(used) / static_cast<double>(cap);
      hottest = std::max(hottest, frac);
      coldest = std::min(coldest, frac);
    }
    return hottest - coldest;
  };
  double before = site_gap();
  ASSERT_GT(before, dfs.config().native_threshold * 0.5)
      << "skew must exceed the site-failover trigger";
  // Each round's budget is half the remaining gap, so convergence takes a
  // few rounds — exactly how a periodic balancer runs in production.
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(dfs.TriggerRebalance().ok());
    Drain(dfs);
  }
  EXPECT_LT(site_gap(), before) << "site failover must narrow the gap";
  EXPECT_LE(site_gap(), dfs.config().native_threshold)
      << "sites must settle inside the flavor threshold";
}

TEST(FlavorFactory, BuildsEveryFlavor) {
  for (Flavor flavor :
       {Flavor::kHdfs, Flavor::kCeph, Flavor::kGluster, Flavor::kLeo,
        Flavor::kGeo}) {
    std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, 1, 6, 3);
    ASSERT_NE(dfs, nullptr);
    EXPECT_EQ(dfs->flavor(), flavor);
    EXPECT_EQ(dfs->ListStorageNodes().size(), 6u);
    EXPECT_EQ(dfs->ListMetaNodes().size(), 3u);
    EXPECT_FALSE(dfs->name().empty());
    EXPECT_FALSE(dfs->DescribeState().empty());
  }
  EXPECT_EQ(MakeCluster(Flavor::kCustom, 1), nullptr);
}

}  // namespace
}  // namespace themis
