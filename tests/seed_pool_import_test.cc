// Satellite coverage for the fleet corpus-exchange entry point on SeedPool
// (DESIGN.md §17): fingerprint dedup, commutative energy merge, eviction
// counter consistency under interleaved Add/ImportSeed, and the seen-set
// snapshot validation added in format v7.

#include "src/core/seed_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/opseq.h"
#include "src/dfs/operation.h"
#include "src/telemetry/metrics.h"

namespace themis {
namespace {

Operation TestOperation(Rng& rng) {
  Operation op;
  op.kind = OpKindFromIndex(static_cast<int>(rng.NextRange(0, kOpKindCount - 1)));
  op.path = "/f" + std::to_string(rng.NextBelow(1000));
  op.size = rng.NextBelow(1 << 20);
  return op;
}

OpSeq TestSeq(Rng& rng) {
  OpSeq seq;
  int len = static_cast<int>(rng.NextRange(1, 8));
  for (int i = 0; i < len; ++i) {
    seq.ops.push_back(TestOperation(rng));
  }
  return seq;
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name).Value();
}

TEST(SeedPoolImportTest, NewSeedEntersPoolMarkedImported) {
  SeedPool pool(8);
  Rng rng(1);
  OpSeq seq = TestSeq(rng);
  uint64_t fingerprint = OpSeqFingerprint(seq);
  EXPECT_TRUE(pool.ImportSeed(seq, 0.5, fingerprint));
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.seeds()[0].imported);
  EXPECT_EQ(pool.seeds()[0].fingerprint, fingerprint);
  EXPECT_TRUE(pool.SeenFingerprint(fingerprint));
}

TEST(SeedPoolImportTest, DuplicateFingerprintImportIsANoOp) {
  SeedPool pool(8);
  Rng rng(2);
  OpSeq seq = TestSeq(rng);
  uint64_t fingerprint = OpSeqFingerprint(seq);
  pool.Add(seq, 0.4);
  ASSERT_EQ(pool.size(), 1u);
  // Same sequence arriving from a peer: no new pool entry, no new id, and
  // the resident seed stays the locally-added (non-imported) copy.
  EXPECT_FALSE(pool.ImportSeed(seq, 0.1, fingerprint));
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.seeds()[0].imported);
  // Re-importing the same fingerprint any number of times changes nothing.
  EXPECT_FALSE(pool.ImportSeed(seq, 0.1, fingerprint));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SeedPoolImportTest, DuplicateImportMergesEnergyUpward) {
  SeedPool pool(8);
  Rng rng(3);
  OpSeq seq = TestSeq(rng);
  uint64_t fingerprint = OpSeqFingerprint(seq);
  pool.Add(seq, 0.4);
  EXPECT_FALSE(pool.ImportSeed(seq, 0.9, fingerprint));
  EXPECT_DOUBLE_EQ(pool.seeds()[0].score, 0.9);
  // A lower-energy duplicate never drags the resident score down.
  EXPECT_FALSE(pool.ImportSeed(seq, 0.2, fingerprint));
  EXPECT_DOUBLE_EQ(pool.seeds()[0].score, 0.9);
}

TEST(SeedPoolImportTest, EnergyMergeIsCommutative) {
  Rng rng(4);
  OpSeq seq = TestSeq(rng);
  uint64_t fingerprint = OpSeqFingerprint(seq);

  SeedPool ab(8);
  ab.Add(seq, 0.3);
  ab.ImportSeed(seq, 0.7, fingerprint);
  ab.ImportSeed(seq, 0.5, fingerprint);

  SeedPool ba(8);
  ba.Add(seq, 0.3);
  ba.ImportSeed(seq, 0.5, fingerprint);
  ba.ImportSeed(seq, 0.7, fingerprint);

  ASSERT_EQ(ab.size(), 1u);
  ASSERT_EQ(ba.size(), 1u);
  EXPECT_DOUBLE_EQ(ab.seeds()[0].score, ba.seeds()[0].score);
  EXPECT_DOUBLE_EQ(ab.seeds()[0].score, 0.7);
}

TEST(SeedPoolImportTest, EmptySequenceIsRejected) {
  SeedPool pool(8);
  uint64_t rejected_before = CounterValue("seed_pool.import_rejected");
  EXPECT_FALSE(pool.ImportSeed(OpSeq{}, 1.0, 42));
  EXPECT_EQ(pool.size(), 0u);
  // A rejected import must not poison the dedup history: the fingerprint
  // stays importable once a valid sequence shows up under it.
  EXPECT_FALSE(pool.SeenFingerprint(42));
  EXPECT_EQ(CounterValue("seed_pool.import_rejected"), rejected_before + 1);
}

TEST(SeedPoolImportTest, EvictionCountersStayConsistentUnderInterleaving) {
  const size_t kCapacity = 16;
  SeedPool pool(kCapacity);
  Rng rng(5);
  uint64_t adds_before = CounterValue("seed_pool.adds");
  uint64_t imports_before = CounterValue("seed_pool.imports");
  uint64_t evictions_before = CounterValue("seed_pool.evictions");
  uint64_t dropped_before = CounterValue("seed_pool.add_dropped");
  uint64_t dups_before = CounterValue("seed_pool.import_dups");

  uint64_t accepted = 0;
  uint64_t attempts = 0;
  for (int i = 0; i < 200; ++i) {
    OpSeq seq = TestSeq(rng);
    double score = rng.NextDouble();
    ++attempts;
    if (i % 3 == 0) {
      uint64_t fingerprint = OpSeqFingerprint(seq);
      if (pool.ImportSeed(seq, score, fingerprint)) ++accepted;
      // Occasionally re-import the same fingerprint to hit the dup path.
      ++attempts;
      if (pool.ImportSeed(seq, score * 0.5, fingerprint)) ++accepted;
    } else {
      pool.Add(seq, score);
    }
  }

  uint64_t adds = CounterValue("seed_pool.adds") - adds_before;
  uint64_t imports = CounterValue("seed_pool.imports") - imports_before;
  uint64_t evictions = CounterValue("seed_pool.evictions") - evictions_before;
  uint64_t dropped = CounterValue("seed_pool.add_dropped") - dropped_before;
  uint64_t dups = CounterValue("seed_pool.import_dups") - dups_before;

  // Every accepted entry either still lives in the pool or was evicted.
  EXPECT_EQ(adds + imports, pool.size() + evictions);
  EXPECT_LE(pool.size(), kCapacity);
  // The dup path fired (every import attempt repeats its fingerprint once).
  EXPECT_GT(dups, 0u);
  // Attempts are fully accounted: accepted + dropped + dups covers every
  // ImportSeed call, and adds + dropped covers every Add call.
  EXPECT_EQ(imports, accepted);
  EXPECT_GT(dropped + dups, 0u);
}

TEST(SeedPoolImportTest, SeenSetSurvivesSnapshotRoundTrip) {
  SeedPool pool(8);
  Rng rng(6);
  OpSeq kept = TestSeq(rng);
  pool.Add(kept, 0.9);
  // Force an eviction so the seen set is a strict superset of the pool.
  SeedPool small(1);
  OpSeq first = TestSeq(rng);
  OpSeq second = TestSeq(rng);
  small.Add(first, 0.2);
  small.Add(second, 0.8);  // evicts `first`
  ASSERT_EQ(small.size(), 1u);

  SnapshotWriter writer;
  small.SaveState(writer);
  SeedPool restored(1);
  SnapshotReader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreState(reader).ok());

  // The evicted sequence's fingerprint is still remembered: re-importing it
  // after a checkpoint/resume cycle stays a no-op.
  EXPECT_FALSE(restored.ImportSeed(first, 1.0, OpSeqFingerprint(first)));
  EXPECT_EQ(restored.size(), 1u);
}

TEST(SeedPoolImportTest, RestoreRejectsUnsortedSeenSet) {
  SnapshotWriter writer;
  writer.U64(0);  // no pooled seeds
  writer.U64(1);  // next_id
  writer.U64(2);  // seen count
  writer.U64(5);
  writer.U64(3);  // out of order
  SeedPool pool(8);
  SnapshotReader reader(writer.buffer());
  Status status = pool.RestoreState(reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("not sorted/unique"), std::string::npos);
}

TEST(SeedPoolImportTest, RestoreRejectsPooledSeedMissingFromSeenSet) {
  Rng rng(7);
  OpSeq seq = TestSeq(rng);
  SnapshotWriter writer;
  writer.U64(1);  // one pooled seed
  SaveOpSeq(writer, seq);
  writer.F64(0.5);                      // score
  writer.U64(1);                        // id
  writer.I64(0);                        // selections
  writer.U64(OpSeqFingerprint(seq));    // fingerprint
  writer.Bool(false);                   // imported
  writer.U64(2);                        // next_id
  writer.U64(0);                        // empty seen set
  SeedPool pool(8);
  SnapshotReader reader(writer.buffer());
  Status status = pool.RestoreState(reader);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("missing from seen set"),
            std::string::npos);
}

}  // namespace
}  // namespace themis
