// Unit tests for the load variance model, the states monitor and the
// imbalance detector.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/bytes.h"
#include "src/monitor/detector.h"
#include "src/monitor/load_model.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

LoadSample StorageSample(NodeId node, uint64_t used, uint64_t capacity,
                         double cpu = 0.0, uint64_t net = 0) {
  LoadSample sample;
  sample.node = node;
  sample.is_storage = true;
  sample.used_bytes = used;
  sample.capacity_bytes = capacity;
  sample.cpu_seconds = cpu;
  sample.requests = net;
  return sample;
}

LoadSample MetaSample(NodeId node, uint64_t requests, double cpu) {
  LoadSample sample;
  sample.node = node;
  sample.is_storage = false;
  sample.requests = requests;
  sample.cpu_seconds = cpu;
  return sample;
}

TEST(LoadModel, BalancedStorageScoresOne) {
  LoadVarianceModel model;
  LoadVarianceSnapshot snapshot = model.Update(
      {StorageSample(1, 100 * kGiB, 480 * kGiB), StorageSample(2, 100 * kGiB, 480 * kGiB)});
  EXPECT_DOUBLE_EQ(snapshot.storage_ratio, 1.0);
}

TEST(LoadModel, StorageSpreadVsWeightedFleet) {
  LoadVarianceModel model;
  // Node 1: 50% of 480G; node 2: 10% of 480G. Fleet = 30%, spread = 20pp.
  LoadVarianceSnapshot snapshot = model.Update(
      {StorageSample(1, 240 * kGiB, 480 * kGiB), StorageSample(2, 48 * kGiB, 480 * kGiB)});
  EXPECT_NEAR(snapshot.storage_ratio, 1.20, 1e-9);
}

TEST(LoadModel, HeterogeneousCapacityUsesWeightedFleet) {
  LoadVarianceModel model;
  // Big brick 50% full, tiny brick 50% full: spread must be 0 even though the
  // byte counts differ wildly.
  LoadVarianceSnapshot snapshot = model.Update(
      {StorageSample(1, 240 * kGiB, 480 * kGiB), StorageSample(2, 64 * kGiB, 128 * kGiB)});
  EXPECT_NEAR(snapshot.storage_ratio, 1.0, 1e-9);
}

TEST(LoadModel, OfflineAndCrashedNodesExcluded) {
  LoadVarianceModel model;
  LoadSample crashed = StorageSample(3, 480 * kGiB, 480 * kGiB);
  crashed.crashed = true;
  LoadSample offline = StorageSample(4, 480 * kGiB, 480 * kGiB);
  offline.online = false;
  LoadVarianceSnapshot snapshot =
      model.Update({StorageSample(1, 10 * kGiB, 480 * kGiB),
                    StorageSample(2, 10 * kGiB, 480 * kGiB), crashed, offline});
  EXPECT_NEAR(snapshot.storage_ratio, 1.0, 1e-9);
  EXPECT_TRUE(snapshot.any_crashed);
  EXPECT_EQ(snapshot.serving_storage_nodes, 2);
}

TEST(LoadModel, CpuRatiosUseWindowedDeltas) {
  LoadVarianceModel model;
  // First window establishes the baseline.
  (void)model.Update({MetaSample(1, 0, 100.0), MetaSample(2, 0, 100.0)});
  // Second window: node 1 burned 9s, node 2 burned 1s.
  LoadVarianceSnapshot snapshot =
      model.Update({MetaSample(1, 0, 109.0), MetaSample(2, 0, 101.0)});
  EXPECT_NEAR(snapshot.instant_computation_ratio, 1.8, 1e-9);  // 9 / mean(5)
}

TEST(LoadModel, TinyLoadsCarryNoSignal) {
  LoadVarianceModel model;
  (void)model.Update({MetaSample(1, 0, 0.0), MetaSample(2, 0, 0.0)});
  LoadVarianceSnapshot snapshot =
      model.Update({MetaSample(1, 0, 0.02), MetaSample(2, 0, 0.0)});
  EXPECT_DOUBLE_EQ(snapshot.instant_computation_ratio, 1.0);  // below the floor
}

TEST(LoadModel, NetworkRatioFromRequests) {
  LoadVarianceModel model;
  (void)model.Update({MetaSample(1, 100, 0), MetaSample(2, 100, 0)});
  LoadVarianceSnapshot snapshot =
      model.Update({MetaSample(1, 190, 0), MetaSample(2, 110, 0)});
  EXPECT_NEAR(snapshot.instant_network_ratio, 1.8, 1e-9);
}

TEST(LoadModel, EmaSmoothsBursts) {
  LoadVarianceModel model;
  (void)model.Update({MetaSample(1, 0, 0.0), MetaSample(2, 0, 0.0)});
  // One bursty window...
  LoadVarianceSnapshot burst =
      model.Update({MetaSample(1, 0, 10.0), MetaSample(2, 0, 0.0)});
  EXPECT_NEAR(burst.instant_computation_ratio, 2.0, 1e-9);
  EXPECT_LT(burst.computation_ratio, burst.instant_computation_ratio);
  // Quiet windows (no further CPU growth) decay the smoothed ratio toward 1.
  LoadVarianceSnapshot quiet = burst;
  for (int i = 0; i < 10; ++i) {
    quiet = model.Update({MetaSample(1, 0, 10.0), MetaSample(2, 0, 0.0)});
  }
  EXPECT_LT(quiet.computation_ratio, 1.1);
  // Persistent skew (the victim keeps burning CPU every window) instead
  // keeps the smoothed ratio pinned high.
  double cumulative = 10.0;
  LoadVarianceSnapshot skewed = quiet;
  for (int i = 0; i < 10; ++i) {
    cumulative += 5.0;
    skewed = model.Update({MetaSample(1, 0, cumulative), MetaSample(2, 0, 0.0)});
  }
  EXPECT_NEAR(skewed.computation_ratio, 2.0, 0.2);
}

TEST(LoadModel, ResetForgetsBaseline) {
  LoadVarianceModel model;
  (void)model.Update({MetaSample(1, 0, 100.0), MetaSample(2, 0, 100.0)});
  model.Reset();
  // After reset the cumulative values count as the window (no stale delta).
  LoadVarianceSnapshot snapshot =
      model.Update({MetaSample(1, 0, 100.0), MetaSample(2, 0, 100.0)});
  EXPECT_DOUBLE_EQ(snapshot.instant_computation_ratio, 1.0);
}

TEST(LoadModel, ScoreWeightsComponents) {
  LoadVarianceSnapshot snapshot;
  snapshot.storage_ratio = 1.3;
  snapshot.computation_ratio = 1.1;
  snapshot.network_ratio = 1.0;
  LoadVarianceWeights weights;  // 1/3 each
  EXPECT_NEAR(snapshot.Score(weights), (0.3 + 0.1 + 0.0) / 3.0, 1e-9);
  LoadVarianceWeights storage_heavy{0.0, 0.0, 1.0};
  EXPECT_NEAR(snapshot.Score(storage_heavy), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(snapshot.MaxRatio(), 1.3);
}

// ---- detector ----

LoadVarianceSnapshot Snapshot(double storage, double cpu = 1.0, double net = 1.0) {
  LoadVarianceSnapshot snapshot;
  snapshot.storage_ratio = storage;
  snapshot.computation_ratio = cpu;
  snapshot.network_ratio = net;
  snapshot.instant_computation_ratio = cpu;
  snapshot.instant_network_ratio = net;
  return snapshot;
}

TEST(Detector, RequiresPersistentImbalance) {
  DetectorConfig config;
  config.threshold = 0.25;
  config.consecutive_needed = 3;
  ImbalanceDetector detector(config);
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());
  std::optional<ImbalanceCandidate> candidate = detector.Check(Snapshot(1.30));
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->dimension, ImbalanceDimension::kStorage);
  EXPECT_NEAR(candidate->ratio, 1.30, 1e-9);
}

TEST(Detector, TransientSpikeResetsStreak) {
  DetectorConfig config;
  config.consecutive_needed = 2;
  ImbalanceDetector detector(config);
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());
  EXPECT_FALSE(detector.Check(Snapshot(1.05)).has_value());  // back in balance
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());  // streak restarted
  EXPECT_TRUE(detector.Check(Snapshot(1.30)).has_value());
}

TEST(Detector, BelowThresholdNeverFlags) {
  ImbalanceDetector detector(DetectorConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.Check(Snapshot(1.24)).has_value());
  }
}

TEST(Detector, CrashIsImmediate) {
  ImbalanceDetector detector(DetectorConfig{});
  LoadVarianceSnapshot snapshot = Snapshot(1.0);
  snapshot.any_crashed = true;
  std::optional<ImbalanceCandidate> candidate = detector.Check(snapshot);
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->dimension, ImbalanceDimension::kNodeHealth);
}

TEST(Detector, PicksWorstDimension) {
  ImbalanceDetector detector(DetectorConfig{});
  std::optional<ImbalanceCandidate> candidate =
      detector.CheckOnce(Snapshot(1.1, 1.9, 1.4));
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->dimension, ImbalanceDimension::kComputation);
}

TEST(Detector, CheckOnceUsesInstantRatios) {
  // A high smoothed ratio with a clean instantaneous window must not confirm.
  ImbalanceDetector detector(DetectorConfig{});
  LoadVarianceSnapshot snapshot = Snapshot(1.0);
  snapshot.computation_ratio = 2.0;           // stale EMA
  snapshot.instant_computation_ratio = 1.05;  // clean probe window
  EXPECT_FALSE(detector.CheckOnce(snapshot).has_value());
}

TEST(Detector, ThresholdIsConfigurable) {
  DetectorConfig config;
  config.threshold = 0.05;
  config.consecutive_needed = 1;
  ImbalanceDetector detector(config);
  EXPECT_TRUE(detector.Check(Snapshot(1.08)).has_value());
  DetectorConfig strict;
  strict.threshold = 0.35;
  strict.consecutive_needed = 1;
  ImbalanceDetector tight(strict);
  EXPECT_FALSE(tight.Check(Snapshot(1.30)).has_value());
}

// ---- edge cases: degenerate clusters and exact thresholds ----

TEST(LoadModel, EmptyClusterIsBalanced) {
  LoadVarianceModel model;
  LoadVarianceSnapshot snapshot = model.Update({});
  EXPECT_DOUBLE_EQ(snapshot.storage_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_computation_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_network_ratio, 1.0);
  EXPECT_FALSE(snapshot.any_crashed);
  EXPECT_EQ(snapshot.serving_storage_nodes, 0);
  ImbalanceDetector detector(DetectorConfig{});
  EXPECT_FALSE(detector.Check(snapshot).has_value());
}

TEST(LoadModel, SingleNodeMaxEqualsMean) {
  LoadVarianceModel model;
  // One node is always "perfectly balanced": max/mean == 1 by construction.
  LoadVarianceSnapshot snapshot =
      model.Update({StorageSample(1, 400 * kGiB, 480 * kGiB, 50.0, 10000)});
  EXPECT_DOUBLE_EQ(snapshot.storage_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_computation_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_network_ratio, 1.0);
  ImbalanceDetector detector(DetectorConfig{});
  EXPECT_FALSE(detector.CheckOnce(snapshot).has_value());
}

TEST(LoadModel, AllZeroLoadsProduceFiniteRatios) {
  LoadVarianceModel model;
  // Zero capacity, zero usage, zero CPU, zero requests: the mean of every
  // component is 0, which must degrade to ratio 1, never divide by zero.
  LoadVarianceSnapshot snapshot = model.Update(
      {StorageSample(1, 0, 0), StorageSample(2, 0, 0), MetaSample(3, 0, 0.0)});
  EXPECT_DOUBLE_EQ(snapshot.storage_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_computation_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.instant_network_ratio, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Score(LoadVarianceWeights{}), 0.0);
  ImbalanceDetector detector(DetectorConfig{});
  EXPECT_FALSE(detector.Check(snapshot).has_value());
}

TEST(Detector, ExactThresholdBoundaryDoesNotFlag) {
  // The detector tests max/mean > 1 + t strictly: a ratio of exactly 1 + t
  // sits on the boundary and must not flag (matching real balancer
  // semantics, where "within threshold" is acceptable).
  DetectorConfig config;
  config.threshold = 0.25;
  config.consecutive_needed = 1;
  ImbalanceDetector detector(config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Check(Snapshot(1.25)).has_value());
    EXPECT_FALSE(detector.CheckOnce(Snapshot(1.25)).has_value());
  }
  // The next representable value above the boundary flags.
  double above = std::nextafter(1.25, 2.0);
  EXPECT_TRUE(detector.CheckOnce(Snapshot(above)).has_value());
  EXPECT_TRUE(detector.Check(Snapshot(above)).has_value());
}

TEST(Detector, ResetStreakClearsProgress) {
  DetectorConfig config;
  config.consecutive_needed = 2;
  ImbalanceDetector detector(config);
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());
  detector.ResetStreak();
  EXPECT_FALSE(detector.Check(Snapshot(1.30)).has_value());
  EXPECT_TRUE(detector.Check(Snapshot(1.30)).has_value());
}

}  // namespace
}  // namespace themis
