// Parallel campaign engine tests: matrix expansion, thread-count and
// job-order invariance of results, per-job error isolation, thread-pool
// drain semantics, and thread-safe stats aggregation. This test is the
// ThreadSanitizer target of the THEMIS_SANITIZE=thread configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "src/common/stats.h"
#include "src/harness/runner.h"
#include "src/harness/thread_pool.h"

namespace themis {
namespace {

CampaignMatrix SmallMatrix() {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster, Flavor::kLeo};
  matrix.strategies = {"Themis", "Fix_conf"};
  matrix.seeds = 2;
  matrix.matrix_seed = 77;
  matrix.base.budget = Minutes(30);
  matrix.base.fault_set = FaultSet::kNewBugs;
  return matrix;
}

void ExpectSameCampaignResult(const CampaignResult& a, const CampaignResult& b,
                              const std::string& context) {
  EXPECT_EQ(a.strategy_name, b.strategy_name) << context;
  EXPECT_EQ(a.flavor, b.flavor) << context;
  EXPECT_EQ(a.testcases, b.testcases) << context;
  EXPECT_EQ(a.total_ops, b.total_ops) << context;
  EXPECT_EQ(a.candidates, b.candidates) << context;
  EXPECT_EQ(a.final_coverage, b.final_coverage) << context;
  EXPECT_EQ(a.false_positives, b.false_positives) << context;
  EXPECT_EQ(a.distinct_failures, b.distinct_failures) << context;
  EXPECT_EQ(a.coverage_timeline, b.coverage_timeline) << context;
  EXPECT_EQ(a.trigger_stats, b.trigger_stats) << context;
  EXPECT_EQ(a.reports.size(), b.reports.size()) << context;
}

TEST(Runner, ExpandAssignsCanonicalIndicesAndDistinctSeeds) {
  CampaignMatrix matrix = SmallMatrix();
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(matrix);
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].config.seed, Rng::SplitSeed(matrix.matrix_seed, i));
    seeds.insert(jobs[i].config.seed);
  }
  EXPECT_EQ(seeds.size(), jobs.size()) << "per-job RNG streams must not collide";
}

TEST(Runner, ResultsIdenticalAcrossThreadCounts) {
  CampaignMatrix matrix = SmallMatrix();
  MatrixResult serial = CampaignRunner({.jobs = 1}).Run(matrix);
  MatrixResult parallel = CampaignRunner({.jobs = 8}).Run(matrix);
  EXPECT_EQ(parallel.threads, 8);
  ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
  for (size_t i = 0; i < serial.jobs.size(); ++i) {
    ASSERT_TRUE(serial.jobs[i].status.ok()) << serial.jobs[i].status.ToString();
    ASSERT_TRUE(parallel.jobs[i].status.ok()) << parallel.jobs[i].status.ToString();
    ExpectSameCampaignResult(serial.jobs[i].result, parallel.jobs[i].result,
                             "job " + std::to_string(i));
  }
  EXPECT_EQ(serial.overall.distinct_failures, parallel.overall.distinct_failures);
  EXPECT_EQ(serial.overall.false_positives, parallel.overall.false_positives);
  EXPECT_EQ(serial.overall.total_ops, parallel.overall.total_ops);
}

TEST(Runner, ResultsIdenticalUnderJobPermutation) {
  CampaignMatrix matrix = SmallMatrix();
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(matrix);
  std::vector<CampaignJob> permuted = jobs;
  // A deterministic non-trivial permutation: reverse, then swap a middle pair.
  std::reverse(permuted.begin(), permuted.end());
  std::swap(permuted[1], permuted[permuted.size() - 2]);

  MatrixResult straight = CampaignRunner({.jobs = 2}).RunJobs(jobs);
  MatrixResult shuffled = CampaignRunner({.jobs = 2}).RunJobs(permuted);

  ASSERT_EQ(straight.jobs.size(), shuffled.jobs.size());
  for (const JobResult& expected : straight.jobs) {
    auto it = std::find_if(shuffled.jobs.begin(), shuffled.jobs.end(),
                           [&](const JobResult& candidate) {
                             return candidate.job.index == expected.job.index;
                           });
    ASSERT_NE(it, shuffled.jobs.end());
    ASSERT_TRUE(expected.status.ok());
    ASSERT_TRUE(it->status.ok());
    ExpectSameCampaignResult(expected.result, it->result,
                             "job " + std::to_string(expected.job.index));
  }
  EXPECT_EQ(straight.overall.distinct_failures, shuffled.overall.distinct_failures);
}

TEST(Runner, InvalidJobIsReportedWithoutAbortingTheMatrix) {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster};
  matrix.strategies = {"Themis"};
  matrix.seeds = 1;
  matrix.base.budget = Minutes(10);
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(matrix);
  ASSERT_EQ(jobs.size(), 1u);

  CampaignJob bad = jobs[0];
  bad.index = 1;
  bad.config.threshold_t = -1.0;  // fails Validate()
  CampaignJob unknown = jobs[0];
  unknown.index = 2;
  unknown.strategy = "NoSuchStrategy";
  jobs.push_back(bad);
  jobs.push_back(unknown);

  MatrixResult result = CampaignRunner({.jobs = 4}).RunJobs(jobs);
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_TRUE(result.jobs[0].status.ok());
  EXPECT_GT(result.jobs[0].result.total_ops, 0u);
  EXPECT_EQ(result.jobs[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.jobs[2].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.FailedJobs(), 2);
  EXPECT_EQ(result.overall.jobs, 3);
  // The healthy job's findings still roll up.
  EXPECT_EQ(result.overall.total_ops, result.jobs[0].result.total_ops);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobs) {
  constexpr int kTasks = 64;
  std::atomic<int> executed{0};
  ThreadPool pool(3);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&executed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      executed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
  // After shutdown new work is rejected, not silently dropped mid-queue.
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPool, ClampsThreadCountAndRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.Submit([&ran] { ran = true; }));
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(Stats, RunningStatMergeMatchesSequentialFeed) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    double x = 0.37 * i - 11.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Stats, ConcurrentRunningStatAggregatesAcrossThreads) {
  ConcurrentRunningStat stat;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&stat, t] {
        RunningStat partial;
        for (int i = 0; i < kPerThread; ++i) {
          if (i % 2 == 0) {
            stat.Add(static_cast<double>(t));
          } else {
            partial.Add(static_cast<double>(t));
          }
        }
        stat.Merge(partial);
      });
    }
    pool.Shutdown();
  }
  RunningStat snapshot = stat.Snapshot();
  EXPECT_EQ(snapshot.count(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(snapshot.min(), 0.0);
  EXPECT_EQ(snapshot.max(), kThreads - 1.0);
}

TEST(Runner, RollupUnionsFailuresAndTimesJobs) {
  CampaignMatrix matrix;
  matrix.flavors = {Flavor::kGluster};
  matrix.strategies = {"Themis"};
  matrix.seeds = 2;
  matrix.matrix_seed = 5;
  matrix.base.budget = Hours(1);
  MatrixResult result = CampaignRunner({.jobs = 2}).Run(matrix);
  ASSERT_EQ(result.jobs.size(), 2u);
  const MatrixRollup& rollup = result.by_strategy.at("Themis");
  EXPECT_EQ(rollup.jobs, 2);
  EXPECT_EQ(rollup.failed_jobs, 0);
  EXPECT_EQ(rollup.total_ops,
            result.jobs[0].result.total_ops + result.jobs[1].result.total_ops);
  EXPECT_EQ(rollup.job_seconds.count(), 2u);
  // The rollup timeline is the first (lowest-index) job's timeline.
  EXPECT_EQ(rollup.coverage_timeline, result.jobs[0].result.coverage_timeline);
  for (const auto& [id, at] : result.jobs[0].result.distinct_failures) {
    auto it = rollup.distinct_failures.find(id);
    ASSERT_NE(it, rollup.distinct_failures.end());
    EXPECT_LE(it->second, at);
  }
}

}  // namespace
}  // namespace themis
