// Snapshot round-trip property tests (DESIGN.md §11): for randomized
// component states, save -> restore -> save must reproduce the original
// bytes, and a restored component must continue producing exactly the same
// stream of behavior as the original. The campaign-level variant checks the
// headline guarantee end to end: a campaign halted at a checkpoint and
// resumed yields the same digest as one that never stopped.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/dfs/flavors/factory.h"
#include "src/core/seed_pool.h"
#include "src/core/strategy_registry.h"
#include "src/coverage/coverage.h"
#include "src/dfs/operation.h"
#include "src/harness/campaign.h"
#include "src/harness/snapshot.h"

namespace themis {
namespace {

std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("snap_roundtrip_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

Operation RandomOperation(Rng& rng) {
  Operation op;
  op.kind = OpKindFromIndex(static_cast<int>(rng.NextRange(0, kOpKindCount - 1)));
  op.path = "/f" + std::to_string(rng.NextBelow(1000));
  op.path2 = rng.Chance(0.3) ? "/g" + std::to_string(rng.NextBelow(1000)) : "";
  op.node = static_cast<NodeId>(rng.NextBelow(16));
  op.brick = static_cast<BrickId>(rng.NextBelow(16));
  op.size = rng.NextU64() >> static_cast<int>(rng.NextBelow(40));
  return op;
}

OpSeq RandomOpSeq(Rng& rng) {
  OpSeq seq;
  int len = static_cast<int>(rng.NextRange(1, 8));
  for (int i = 0; i < len; ++i) {
    seq.ops.push_back(RandomOperation(rng));
  }
  return seq;
}

TEST(SnapshotRoundTripTest, RngContinuesTheExactStream) {
  Rng meta(2026);
  for (int trial = 0; trial < 20; ++trial) {
    Rng original(meta.NextU64());
    // Random warm-up, deliberately sometimes leaving a Box-Muller spare.
    int warmup = static_cast<int>(meta.NextRange(0, 200));
    for (int i = 0; i < warmup; ++i) original.NextU64();
    if (meta.Chance(0.5)) original.NextGaussian();

    SnapshotWriter writer;
    original.SaveState(writer);
    Rng restored(0);
    SnapshotReader reader(writer.buffer());
    ASSERT_TRUE(restored.RestoreState(reader).ok());

    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(original.NextU64(), restored.NextU64()) << "trial " << trial;
    }
    ASSERT_DOUBLE_EQ(original.NextGaussian(), restored.NextGaussian());
  }
}

TEST(SnapshotRoundTripTest, SeedPoolSaveRestoreSaveIsByteStable) {
  Rng meta(7);
  for (int trial = 0; trial < 10; ++trial) {
    SeedPool pool(64);
    int seeds = static_cast<int>(meta.NextRange(0, 40));
    for (int i = 0; i < seeds; ++i) {
      pool.Add(RandomOpSeq(meta), meta.NextDouble() * 10.0);
    }
    Rng select_rng(meta.NextU64());
    for (int i = 0; i < 5 && !pool.empty(); ++i) pool.Select(select_rng);

    SnapshotWriter first;
    pool.SaveState(first);
    SeedPool restored(64);
    SnapshotReader reader(first.buffer());
    ASSERT_TRUE(restored.RestoreState(reader).ok());
    SnapshotWriter second;
    restored.SaveState(second);
    ASSERT_EQ(first.buffer(), second.buffer()) << "trial " << trial;

    // Continued selection draws identically from both pools.
    if (!pool.empty()) {
      Rng a(42), b(42);
      for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(pool.Select(a).ToString(), restored.Select(b).ToString());
      }
    }
  }
}

TEST(SnapshotRoundTripTest, CoverageBitmapsSurviveExactly) {
  Rng meta(11);
  for (int trial = 0; trial < 10; ++trial) {
    CoverageRecorder original(4096, meta.NextU64());
    int hits = static_cast<int>(meta.NextRange(0, 500));
    for (int i = 0; i < hits; ++i) {
      CovModule module = static_cast<CovModule>(meta.NextBelow(10));
      if (meta.Chance(0.3)) {
        original.HitStatic(module, static_cast<uint32_t>(meta.NextBelow(64)));
      } else {
        original.HitState(module, meta.NextU64(),
                          static_cast<int>(meta.NextRange(1, 16)));
      }
    }
    SnapshotWriter first;
    original.SaveState(first);
    CoverageRecorder restored(4096, 0);
    SnapshotReader reader(first.buffer());
    ASSERT_TRUE(restored.RestoreState(reader).ok());
    EXPECT_EQ(original.TotalHits(), restored.TotalHits());
    EXPECT_EQ(original.StaticHits(), restored.StaticHits());
    SnapshotWriter second;
    restored.SaveState(second);
    ASSERT_EQ(first.buffer(), second.buffer()) << "trial " << trial;
  }
}

TEST(SnapshotRoundTripTest, CoverageRejectsWrongBranchSpace) {
  CoverageRecorder original(4096, 9);
  original.HitState(CovModule::kBalancer, 123, 4);
  SnapshotWriter writer;
  original.SaveState(writer);
  CoverageRecorder smaller(1024, 9);
  SnapshotReader reader(writer.buffer());
  Status status = smaller.RestoreState(reader);
  ASSERT_FALSE(status.ok());
}

// The fuzzer (schedule state + seed pool), its input model and its RNG,
// restored together, continue generating exactly the test cases the
// original would have generated.
TEST(SnapshotRoundTripTest, FuzzerContinuesTheExactSchedule) {
  Rng meta(31337);
  for (int trial = 0; trial < 5; ++trial) {
    uint64_t seed = meta.NextU64();
    Rng rng(seed);
    InputModel model;
    Result<std::unique_ptr<Strategy>> fuzzer =
        StrategyRegistry::Instance().Make("Themis", model, rng);
    ASSERT_TRUE(fuzzer.ok());

    // Drive the fuzzer through a randomized prefix of synthetic outcomes.
    int prefix = static_cast<int>(meta.NextRange(5, 60));
    for (int i = 0; i < prefix; ++i) {
      OpSeq seq = (*fuzzer)->Next();
      ExecOutcome outcome;
      outcome.variance_score = meta.NextDouble();
      outcome.variance_gain = meta.NextDouble() - 0.3;
      outcome.new_coverage = static_cast<size_t>(meta.NextRange(0, 5));
      outcome.ops_executed = static_cast<int>(seq.size());
      outcome.ops_ok = outcome.ops_executed;
      (*fuzzer)->OnOutcome(seq, outcome);
    }

    SnapshotWriter writer;
    rng.SaveState(writer);
    model.SaveState(writer);
    (*fuzzer)->SaveState(writer);

    Rng rng2(0);
    InputModel model2;
    Result<std::unique_ptr<Strategy>> fuzzer2 =
        StrategyRegistry::Instance().Make("Themis", model2, rng2);
    ASSERT_TRUE(fuzzer2.ok());
    SnapshotReader reader(writer.buffer());
    ASSERT_TRUE(rng2.RestoreState(reader).ok());
    ASSERT_TRUE(model2.RestoreState(reader).ok());
    ASSERT_TRUE((*fuzzer2)->RestoreState(reader).ok());
    ASSERT_TRUE(reader.AtEnd());

    for (int i = 0; i < 30; ++i) {
      OpSeq a = (*fuzzer)->Next();
      OpSeq b = (*fuzzer2)->Next();
      ASSERT_EQ(a.ToString(), b.ToString()) << "trial " << trial << " step " << i;
      ExecOutcome outcome;
      outcome.variance_gain = 0.1;
      (*fuzzer)->OnOutcome(a, outcome);
      (*fuzzer2)->OnOutcome(b, outcome);
    }
  }
}

TEST(SnapshotRoundTripTest, SnapshotFilePreservesKindAndPayload) {
  const std::string dir = FreshDir("file");
  Rng meta(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::string payload;
    size_t len = static_cast<size_t>(meta.NextRange(0, 4096));
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(meta.NextBelow(256)));
    }
    SnapshotKind kind =
        meta.Chance(0.5) ? SnapshotKind::kMidCampaign : SnapshotKind::kFinal;
    const std::string path = dir + "/trial-" + std::to_string(trial) + ".ckpt";
    ASSERT_TRUE(WriteSnapshotFile(path, kind, payload).ok());
    Result<LoadedSnapshot> loaded = ReadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->kind, kind);
    EXPECT_EQ(loaded->payload, payload);
  }
}

// Format v3: the cluster's streaming rate-window bases (DESIGN.md §13) are
// part of the snapshot. Save mid-window -> restore -> save must be byte
// stable, and the restored cluster's O(1) load aggregates must track the
// original exactly through further mid-window mutations.
TEST(SnapshotRoundTripTest, ClusterRateWindowsSurviveExactly) {
  for (Flavor flavor : {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph, Flavor::kLeo,
                        Flavor::kGeo}) {
    std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, 2027);
    Rng rng(2027);
    InputModel model;
    model.SyncFromDfs(*dfs);
    OpSeqGenerator generator(model);
    for (int i = 0; i < 200; ++i) {
      Operation op = generator.GenerateOp(rng);
      model.Observe(op, dfs->Execute(op));
    }
    dfs->AdvanceLoadWindow();  // leave stale windows behind...
    for (int i = 0; i < 100; ++i) {
      Operation op = generator.GenerateOp(rng);
      model.Observe(op, dfs->Execute(op));
    }  // ...and a half-open window on the nodes these ops touched

    SnapshotWriter first;
    dfs->SaveState(first);
    std::unique_ptr<DfsCluster> restored = MakeCluster(flavor, 2027);
    SnapshotReader reader(first.buffer());
    ASSERT_TRUE(restored->RestoreState(reader).ok()) << FlavorName(flavor);
    SnapshotWriter second;
    restored->SaveState(second);
    EXPECT_EQ(first.buffer(), second.buffer()) << FlavorName(flavor);

    LoadStatsSnapshot a, b;
    ASSERT_TRUE(dfs->SnapshotLoadStats(a));
    ASSERT_TRUE(restored->SnapshotLoadStats(b));
    EXPECT_TRUE(a == b) << FlavorName(flavor) << " diverged at restore";

    // Continue the same mid-window mutations on both sides: deltas keep
    // differencing against the restored bases, so aggregates must stay equal.
    for (NodeId node : dfs->ServingStorageNodeIds()) {
      dfs->InjectCpuLoad(node, 0.25 + 0.125 * static_cast<double>(node));
      restored->InjectCpuLoad(node, 0.25 + 0.125 * static_cast<double>(node));
      dfs->InjectNetLoad(node, 3, 1, 7);
      restored->InjectNetLoad(node, 3, 1, 7);
    }
    ASSERT_TRUE(dfs->SnapshotLoadStats(a));
    ASSERT_TRUE(restored->SnapshotLoadStats(b));
    EXPECT_TRUE(a == b) << FlavorName(flavor) << " diverged mid-window";
  }
}

// The headline property at the smallest useful scale: halt a campaign at
// its first checkpoint (~1k ops in), resume it, and require the digest of
// the continued run to equal an uninterrupted run's digest bit for bit.
TEST(SnapshotRoundTripTest, ContinuedRunMatchesUninterruptedDigest) {
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = 4321;
  config.budget = Hours(2);
  Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
  ASSERT_TRUE(uninterrupted.ok());

  const std::string dir = FreshDir("continued");
  CampaignConfig halted = config;
  halted.checkpoint_dir = dir;
  halted.checkpoint_every_ops = 1000;
  halted.halt_after_checkpoints = 1;
  Result<CampaignResult> crash = Campaign(halted).Run("Themis");
  ASSERT_FALSE(crash.ok());  // the crash-test hook aborts the run

  CampaignConfig resumed = config;
  resumed.checkpoint_dir = dir;
  resumed.checkpoint_every_ops = 1000;
  resumed.resume = true;
  Result<CampaignResult> continued = Campaign(resumed).Run("Themis");
  ASSERT_TRUE(continued.ok()) << continued.status().ToString();
  EXPECT_EQ(continued->Digest(), uninterrupted->Digest());
  EXPECT_EQ(continued->testcases, uninterrupted->testcases);
  EXPECT_EQ(continued->total_ops, uninterrupted->total_ops);
}

// Same headline property for the v5 state: a GeoFS campaign's checkpoint
// carries the load-group assignment table and the geotag tree, both
// history-dependent, so a resumed run only matches the uninterrupted digest
// if they round-trip exactly.
TEST(SnapshotRoundTripTest, GeoContinuedRunMatchesUninterruptedDigest) {
  CampaignConfig config;
  config.flavor = Flavor::kGeo;
  config.seed = 8765;
  config.budget = Hours(2);
  Result<CampaignResult> uninterrupted = Campaign(config).Run("Themis");
  ASSERT_TRUE(uninterrupted.ok());

  const std::string dir = FreshDir("geo_continued");
  CampaignConfig halted = config;
  halted.checkpoint_dir = dir;
  halted.checkpoint_every_ops = 1000;
  halted.halt_after_checkpoints = 1;
  Result<CampaignResult> crash = Campaign(halted).Run("Themis");
  ASSERT_FALSE(crash.ok());

  CampaignConfig resumed = config;
  resumed.checkpoint_dir = dir;
  resumed.checkpoint_every_ops = 1000;
  resumed.resume = true;
  Result<CampaignResult> continued = Campaign(resumed).Run("Themis");
  ASSERT_TRUE(continued.ok()) << continued.status().ToString();
  EXPECT_EQ(continued->Digest(), uninterrupted->Digest());
  EXPECT_EQ(continued->total_ops, uninterrupted->total_ops);
}

}  // namespace
}  // namespace themis
