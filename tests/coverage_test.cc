// Unit tests for the branch-coverage substrate.

#include <gtest/gtest.h>

#include "src/coverage/coverage.h"
#include "src/dfs/types.h"

namespace themis {
namespace {

TEST(Coverage, StaticSitesCountOnce) {
  CoverageRecorder recorder(1000);
  EXPECT_TRUE(recorder.HitStatic(CovModule::kBalancer, 1));
  EXPECT_FALSE(recorder.HitStatic(CovModule::kBalancer, 1));
  EXPECT_TRUE(recorder.HitStatic(CovModule::kBalancer, 2));
  EXPECT_TRUE(recorder.HitStatic(CovModule::kMigration, 1));  // module-scoped
  EXPECT_EQ(recorder.StaticHits(), 3u);
}

TEST(Coverage, StateHitsAreSetSemantics) {
  CoverageRecorder recorder(100000);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 42), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 42), 0u);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 43), 1u);
  EXPECT_EQ(recorder.VirtualHits(), 2u);
  EXPECT_EQ(recorder.TotalHits(), 2u);
}

TEST(Coverage, ModulesNamespaceTheHashes) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 7), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kBalancer, 7), 1u);
  EXPECT_EQ(recorder.VirtualHits(), 2u);
}

TEST(Coverage, MultiplicityUnlocksMoreBranches) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 8), 8u);
  // Re-hitting the same tuple at any multiplicity adds nothing.
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 8), 0u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 16), 8u);
  EXPECT_EQ(recorder.VirtualHits(), 16u);
}

TEST(Coverage, MultiplicityIsClamped) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 2, 1000), 16u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 3, 0), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 4, -5), 1u);
}

TEST(Coverage, SeedsDecorrelateCampaigns) {
  CoverageRecorder a(1 << 16, 1);
  CoverageRecorder b(1 << 16, 2);
  // Same tuples, different seeds: fine; just must not crash and must count.
  for (uint64_t i = 0; i < 100; ++i) {
    a.HitState(CovModule::kRequest, i);
    b.HitState(CovModule::kRequest, i);
  }
  EXPECT_EQ(a.VirtualHits(), 100u);
  EXPECT_EQ(b.VirtualHits(), 100u);
}

TEST(Coverage, SaturatesAtSpaceSize) {
  CoverageRecorder recorder(64);
  for (uint64_t i = 0; i < 10000; ++i) {
    recorder.HitState(CovModule::kRequest, i);
  }
  EXPECT_LE(recorder.VirtualHits(), 64u);
  EXPECT_GE(recorder.VirtualHits(), 60u);  // nearly full
}

TEST(Coverage, ResetClears) {
  CoverageRecorder recorder(1000);
  recorder.HitStatic(CovModule::kRequest, 1);
  recorder.HitState(CovModule::kRequest, 1);
  recorder.Reset();
  EXPECT_EQ(recorder.TotalHits(), 0u);
  EXPECT_TRUE(recorder.HitStatic(CovModule::kRequest, 1));
}

TEST(Coverage, FlavorBranchSpacesMatchPaperMagnitudes) {
  // Spaces are sized so saturated campaigns land near Table 5's numbers;
  // ordering must match the paper's (Ceph > Gluster > HDFS > Leo).
  EXPECT_GT(FlavorBranchSpace(Flavor::kCeph), FlavorBranchSpace(Flavor::kGluster));
  EXPECT_GT(FlavorBranchSpace(Flavor::kGluster), FlavorBranchSpace(Flavor::kHdfs));
  EXPECT_GT(FlavorBranchSpace(Flavor::kHdfs), FlavorBranchSpace(Flavor::kLeo));
}

TEST(Coverage, NullRecorderMacroIsSafe) {
  CoverageRecorder* recorder = nullptr;
  COV_BRANCH(recorder, CovModule::kRequest, 1);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace themis
