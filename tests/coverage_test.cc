// Unit tests for the branch-coverage substrate.

#include <gtest/gtest.h>

#include <memory>

#include "src/coverage/coverage.h"
#include "src/dfs/flavors/factory.h"
#include "src/dfs/operation.h"
#include "src/dfs/types.h"
#include "src/faults/env_fault.h"

namespace themis {
namespace {

TEST(Coverage, StaticSitesCountOnce) {
  CoverageRecorder recorder(1000);
  EXPECT_TRUE(recorder.HitStatic(CovModule::kBalancer, 1));
  EXPECT_FALSE(recorder.HitStatic(CovModule::kBalancer, 1));
  EXPECT_TRUE(recorder.HitStatic(CovModule::kBalancer, 2));
  EXPECT_TRUE(recorder.HitStatic(CovModule::kMigration, 1));  // module-scoped
  EXPECT_EQ(recorder.StaticHits(), 3u);
}

TEST(Coverage, StateHitsAreSetSemantics) {
  CoverageRecorder recorder(100000);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 42), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 42), 0u);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 43), 1u);
  EXPECT_EQ(recorder.VirtualHits(), 2u);
  EXPECT_EQ(recorder.TotalHits(), 2u);
}

TEST(Coverage, ModulesNamespaceTheHashes) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kRequest, 7), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kBalancer, 7), 1u);
  EXPECT_EQ(recorder.VirtualHits(), 2u);
}

TEST(Coverage, MultiplicityUnlocksMoreBranches) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 8), 8u);
  // Re-hitting the same tuple at any multiplicity adds nothing.
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 8), 0u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 1, 16), 8u);
  EXPECT_EQ(recorder.VirtualHits(), 16u);
}

TEST(Coverage, MultiplicityIsClamped) {
  CoverageRecorder recorder(1000000);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 2, 1000), 16u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 3, 0), 1u);
  EXPECT_EQ(recorder.HitState(CovModule::kMigration, 4, -5), 1u);
}

TEST(Coverage, SeedsDecorrelateCampaigns) {
  CoverageRecorder a(1 << 16, 1);
  CoverageRecorder b(1 << 16, 2);
  // Same tuples, different seeds: fine; just must not crash and must count.
  for (uint64_t i = 0; i < 100; ++i) {
    a.HitState(CovModule::kRequest, i);
    b.HitState(CovModule::kRequest, i);
  }
  EXPECT_EQ(a.VirtualHits(), 100u);
  EXPECT_EQ(b.VirtualHits(), 100u);
}

TEST(Coverage, SaturatesAtSpaceSize) {
  CoverageRecorder recorder(64);
  for (uint64_t i = 0; i < 10000; ++i) {
    recorder.HitState(CovModule::kRequest, i);
  }
  EXPECT_LE(recorder.VirtualHits(), 64u);
  EXPECT_GE(recorder.VirtualHits(), 60u);  // nearly full
}

TEST(Coverage, ResetClears) {
  CoverageRecorder recorder(1000);
  recorder.HitStatic(CovModule::kRequest, 1);
  recorder.HitState(CovModule::kRequest, 1);
  recorder.Reset();
  EXPECT_EQ(recorder.TotalHits(), 0u);
  EXPECT_TRUE(recorder.HitStatic(CovModule::kRequest, 1));
}

TEST(Coverage, FlavorBranchSpacesMatchPaperMagnitudes) {
  // Spaces are sized so saturated campaigns land near Table 5's numbers;
  // ordering must match the paper's (Ceph > Gluster > HDFS > Leo).
  EXPECT_GT(FlavorBranchSpace(Flavor::kCeph), FlavorBranchSpace(Flavor::kGluster));
  EXPECT_GT(FlavorBranchSpace(Flavor::kGluster), FlavorBranchSpace(Flavor::kHdfs));
  EXPECT_GT(FlavorBranchSpace(Flavor::kHdfs), FlavorBranchSpace(Flavor::kLeo));
}

TEST(Coverage, NullRecorderMacroIsSafe) {
  CoverageRecorder* recorder = nullptr;
  COV_BRANCH(recorder, CovModule::kRequest, 1);  // must not crash
  SUCCEED();
}

// The 7 environment-fault operators (DESIGN.md §14) form the fourth op
// class, and RecordOpCoverage must fire for every one of them — they take
// the early env arm of Execute, which bypasses metadata routing and is easy
// to starve of instrumentation by accident.
TEST(Coverage, EnvFaultOpsRecordOpCoverage) {
  for (int i = kOpKindCount; i < kTotalOpKindCount; ++i) {
    OpKind kind = OpKindFromTotalIndex(i);
    EXPECT_TRUE(IsEnvFaultOp(kind)) << OpKindName(kind);
    EXPECT_EQ(ClassOf(kind), OpClass::kEnvFault) << OpKindName(kind);
  }

  std::unique_ptr<DfsCluster> cluster = MakeCluster(Flavor::kGluster, 4242);
  CoverageRecorder recorder(FlavorBranchSpace(Flavor::kGluster), 4242);
  cluster->set_coverage(&recorder);
  EnvFaultInjector injector(4242);
  cluster->set_env_faults(&injector);

  NodeId victim = cluster->ListStorageNodes().front();
  for (int i = kOpKindCount; i < kTotalOpKindCount; ++i) {
    Operation op;
    op.kind = OpKindFromTotalIndex(i);
    op.node = victim;
    op.size = 200;  // in-grammar as a rate, a slow factor and a crash delay
    size_t before = recorder.TotalHits();
    OpResult result = cluster->Execute(op);
    EXPECT_TRUE(result.status.ok()) << OpKindName(op.kind) << ": "
                                    << result.status.ToString();
    EXPECT_GT(recorder.TotalHits(), before) << OpKindName(op.kind);
  }
}

// The env-fault class bit (1 << 3) must reach the state-feature tuple: the
// same client request executed inside a window of recent env faults is a
// different exercised branch than in a fault-free window.
TEST(Coverage, EnvFaultClassBitReachesTheStateTuple) {
  std::unique_ptr<DfsCluster> cluster = MakeCluster(Flavor::kGluster, 99);
  CoverageRecorder recorder(FlavorBranchSpace(Flavor::kGluster), 99);
  cluster->set_coverage(&recorder);
  EnvFaultInjector injector(99);
  cluster->set_env_faults(&injector);

  Operation probe;  // deterministic, state-preserving client request
  probe.kind = OpKind::kOpen;
  probe.path = "/no/such/file";

  cluster->Execute(probe);
  size_t baseline = recorder.VirtualHits();
  cluster->Execute(probe);
  ASSERT_EQ(recorder.VirtualHits(), baseline)
      << "repeating the probe in an unchanged state must not mint coverage";

  // Saturate the 8-op recency window with env faults. kEnvClearFaults is a
  // no-op on cluster state, so the only feature that changes under the probe
  // is the class mask gaining the kEnvFault bit.
  for (int i = 0; i < 9; ++i) {
    Operation clear;
    clear.kind = OpKind::kEnvClearFaults;
    ASSERT_TRUE(cluster->Execute(clear).status.ok());
  }
  size_t after_burst = recorder.VirtualHits();
  cluster->Execute(probe);
  EXPECT_GT(recorder.VirtualHits(), after_burst)
      << "the env-fault class bit must distinguish the probe's state tuple";
}

}  // namespace
}  // namespace themis
