// Unit tests for the cluster-side namespace tree.

#include <gtest/gtest.h>

#include "src/dfs/namespace_tree.h"

namespace themis {
namespace {

TEST(NamespaceTree, RootExists) {
  NamespaceTree tree;
  EXPECT_TRUE(tree.IsDir("/"));
  EXPECT_EQ(tree.file_count(), 0u);
  EXPECT_EQ(tree.dir_count(), 0u);
}

TEST(NamespaceTree, CreateAndFindFile) {
  NamespaceTree tree;
  Result<FileId> id = tree.CreateFile("/a", 100);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(tree.IsFile("/a"));
  EXPECT_FALSE(tree.IsDir("/a"));
  EXPECT_EQ(tree.total_bytes(), 100u);
  EXPECT_EQ(tree.PathOf(*id), "/a");
}

TEST(NamespaceTree, CreateRequiresParent) {
  NamespaceTree tree;
  EXPECT_EQ(tree.CreateFile("/no/such/dir/f", 1).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  EXPECT_TRUE(tree.CreateFile("/d/f", 1).ok());
}

TEST(NamespaceTree, CreateDuplicateFails) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("/a", 1).ok());
  EXPECT_EQ(tree.CreateFile("/a", 2).status().code(), StatusCode::kAlreadyExists);
}

TEST(NamespaceTree, FileIdsAreUnique) {
  NamespaceTree tree;
  FileId a = *tree.CreateFile("/a", 1);
  FileId b = *tree.CreateFile("/b", 1);
  EXPECT_NE(a, b);
}

TEST(NamespaceTree, RemoveFileUpdatesAccounting) {
  NamespaceTree tree;
  FileId id = *tree.CreateFile("/a", 100);
  ASSERT_TRUE(tree.RemoveFile("/a").ok());
  EXPECT_EQ(tree.total_bytes(), 0u);
  EXPECT_EQ(tree.file_count(), 0u);
  EXPECT_EQ(tree.PathOf(id), "");
  EXPECT_EQ(tree.RemoveFile("/a").code(), StatusCode::kNotFound);
}

TEST(NamespaceTree, SetFileSize) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("/a", 100).ok());
  ASSERT_TRUE(tree.SetFileSize("/a", 250).ok());
  EXPECT_EQ(tree.total_bytes(), 250u);
  EXPECT_EQ(tree.SetFileSize("/missing", 1).code(), StatusCode::kNotFound);
}

TEST(NamespaceTree, MkdirAndRmdir) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  EXPECT_EQ(tree.dir_count(), 1u);
  EXPECT_EQ(tree.MakeDir("/d").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.MakeDir("/x/y").code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree.RemoveDir("/d").ok());
  EXPECT_EQ(tree.dir_count(), 0u);
}

TEST(NamespaceTree, RmdirRefusesNonEmpty) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  ASSERT_TRUE(tree.CreateFile("/d/f", 1).ok());
  EXPECT_EQ(tree.RemoveDir("/d").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(tree.RemoveFile("/d/f").ok());
  EXPECT_TRUE(tree.RemoveDir("/d").ok());
}

TEST(NamespaceTree, RootIsProtected) {
  NamespaceTree tree;
  EXPECT_FALSE(tree.RemoveDir("/").ok());
  EXPECT_FALSE(tree.CreateFile("/", 1).ok());
  EXPECT_FALSE(tree.Rename("/", "/x").ok());
}

TEST(NamespaceTree, RenameFile) {
  NamespaceTree tree;
  FileId id = *tree.CreateFile("/a", 10);
  ASSERT_TRUE(tree.Rename("/a", "/b").ok());
  EXPECT_FALSE(tree.IsFile("/a"));
  EXPECT_TRUE(tree.IsFile("/b"));
  EXPECT_EQ(tree.PathOf(id), "/b");
  EXPECT_EQ(*tree.FileIdOf("/b"), id);
}

TEST(NamespaceTree, RenameRejectsCollisionsAndMissing) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("/a", 1).ok());
  ASSERT_TRUE(tree.CreateFile("/b", 1).ok());
  EXPECT_EQ(tree.Rename("/a", "/b").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.Rename("/missing", "/c").code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Rename("/a", "/a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.Rename("/a", "/nodir/c").code(), StatusCode::kNotFound);
}

TEST(NamespaceTree, RenameDirectoryMovesSubtree) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  ASSERT_TRUE(tree.MakeDir("/d/sub").ok());
  FileId f1 = *tree.CreateFile("/d/f1", 5);
  FileId f2 = *tree.CreateFile("/d/sub/f2", 7);
  ASSERT_TRUE(tree.Rename("/d", "/e").ok());
  EXPECT_TRUE(tree.IsDir("/e"));
  EXPECT_TRUE(tree.IsDir("/e/sub"));
  EXPECT_EQ(tree.PathOf(f1), "/e/f1");
  EXPECT_EQ(tree.PathOf(f2), "/e/sub/f2");
  EXPECT_FALSE(tree.IsDir("/d"));
  EXPECT_EQ(tree.total_bytes(), 12u);
}

TEST(NamespaceTree, RenameDirectoryUnderItselfRejected) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  EXPECT_EQ(tree.Rename("/d", "/d/inner").code(), StatusCode::kInvalidArgument);
}

TEST(NamespaceTree, ListFiles) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("/b", 1).ok());
  ASSERT_TRUE(tree.CreateFile("/a", 1).ok());
  ASSERT_TRUE(tree.MakeDir("/d").ok());
  std::vector<std::string> files = tree.ListFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/a");  // sorted map order
  EXPECT_EQ(files[1], "/b");
}

TEST(NamespaceTree, ClearResets) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("/a", 1).ok());
  tree.Clear();
  EXPECT_EQ(tree.file_count(), 0u);
  EXPECT_EQ(tree.total_bytes(), 0u);
  EXPECT_TRUE(tree.IsDir("/"));
}

TEST(NamespaceTree, PathsAreNormalized) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.CreateFile("//a//", 1).ok());
  EXPECT_TRUE(tree.IsFile("/a"));
  EXPECT_TRUE(tree.IsFile("a"));
}

TEST(NamespaceTree, SimilarPrefixIsNotAChild) {
  // "/dir2" must not count as a child of "/dir" during rmdir.
  NamespaceTree tree;
  ASSERT_TRUE(tree.MakeDir("/dir").ok());
  ASSERT_TRUE(tree.MakeDir("/dir2").ok());
  EXPECT_TRUE(tree.RemoveDir("/dir").ok());
  EXPECT_TRUE(tree.IsDir("/dir2"));
}

}  // namespace
}  // namespace themis
