// Unit tests for the telemetry subsystem: sharded metrics, histograms, the
// campaign event log and its JSON rendering.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace themis {
namespace {

// Recording is compiled out under -DTHEMIS_TELEMETRY=OFF, so tests that
// assert on recorded values only make sense in enabled builds.
#define THEMIS_SKIP_IF_TELEMETRY_DISABLED()             \
  do {                                                  \
    if (!kTelemetryEnabled) {                           \
      GTEST_SKIP() << "telemetry compiled out";         \
    }                                                   \
  } while (0)

TEST(Metrics, CounterMergesShards) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Counter counter;
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(Metrics, CounterSumsAcrossThreads) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeGoesUpAndDown) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Gauge gauge;
  gauge.Inc();
  gauge.Inc();
  gauge.Dec();
  EXPECT_EQ(gauge.Value(), 1);
  gauge.Add(-5);
  EXPECT_EQ(gauge.Value(), -4);
}

TEST(Metrics, HistogramCountsAndBuckets) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Histogram histogram;
  histogram.Record(0.5);   // bucket 0 (<= 1)
  histogram.Record(3.0);   // bucket 1 (<= 4)
  histogram.Record(100.0); // bucket 4 (<= 256)
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 103.5);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[4], 1u);
}

TEST(Metrics, HistogramOverflowLandsInLastBucket) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Histogram histogram;
  histogram.Record(1e30);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.buckets[kHistogramBuckets - 1], 1u);
}

TEST(Metrics, HistogramQuantilesAreOrdered) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  HistogramSnapshot snapshot = histogram.Snapshot();
  double p50 = snapshot.Quantile(0.5);
  double p99 = snapshot.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_NEAR(snapshot.mean(), 500.5, 1e-9);
}

TEST(Metrics, RegistryHandlesAreStable) {
  THEMIS_SKIP_IF_TELEMETRY_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("telemetry_test.stable");
  // Force more inserts, then re-resolve: same address (hot loops cache it).
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("telemetry_test.filler." + std::to_string(i));
  }
  EXPECT_EQ(&a, &registry.GetCounter("telemetry_test.stable"));
  a.Inc(7);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("telemetry_test.stable"), 7u);
}

TEST(Metrics, MacroIncrementsNamedCounter) {
  uint64_t before =
      MetricsRegistry::Global().GetCounter("telemetry_test.macro").Value();
  THEMIS_COUNTER_INC("telemetry_test.macro", 3);
  uint64_t after =
      MetricsRegistry::Global().GetCounter("telemetry_test.macro").Value();
  EXPECT_EQ(after - before, kTelemetryEnabled ? 3u : 0u);
}

TEST(Trace, SpanRecordsDurationAndCall) {
  SpanMetrics metrics = MakeSpanMetrics("telemetry_test.span");
  uint64_t calls_before = MetricsRegistry::Global()
                              .GetCounter("span.telemetry_test.span.calls")
                              .Value();
  {
    TraceSpan span(*metrics.histogram, *metrics.calls);
    (void)span;
  }
  uint64_t calls_after = MetricsRegistry::Global()
                             .GetCounter("span.telemetry_test.span.calls")
                             .Value();
  EXPECT_EQ(calls_after - calls_before, kTelemetryEnabled ? 1u : 0u);
}

TEST(EventLog, RecordsWithVirtualTimestamps) {
  VirtualClock clock;
  EventLog log;
  log.BindClock(&clock);
  clock.Advance(Minutes(2));
  log.Record(CampaignEventKind::kSeedAccepted, "variance", 1.5, 0.25);
  clock.Advance(Seconds(30));
  log.Record(CampaignEventKind::kMutation, "replace", 0.0, 0.0, 3);
  if (!kTelemetryEnabled) {
    EXPECT_TRUE(log.events().empty());
    return;
  }
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].kind, CampaignEventKind::kSeedAccepted);
  EXPECT_EQ(log.events()[0].at, Minutes(2));
  EXPECT_EQ(log.events()[0].label, "variance");
  EXPECT_DOUBLE_EQ(log.events()[0].value, 1.5);
  EXPECT_EQ(log.events()[1].at, Minutes(2) + Seconds(30));
  EXPECT_EQ(log.events()[1].count, 3u);
}

TEST(EventLog, TakeEventsDrainsTheLog) {
  EventLog log;
  log.Record(CampaignEventKind::kClusterReset);
  std::vector<CampaignEvent> taken = log.TakeEvents();
  EXPECT_EQ(taken.size(), kTelemetryEnabled ? 1u : 0u);
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, ToJsonOmitsZeroFields) {
  CampaignEvent event;
  event.kind = CampaignEventKind::kDoubleCheck;
  event.at = 1500000;
  event.label = "confirmed";
  event.value = 1.5;
  std::string json = event.ToJson(4);
  EXPECT_EQ(json,
            "{\"job\":4,\"at_us\":1500000,\"event\":\"double_check\","
            "\"label\":\"confirmed\",\"value\":1.5}");
  CampaignEvent bare;
  bare.kind = CampaignEventKind::kClusterReset;
  EXPECT_EQ(bare.ToJson(), "{\"at_us\":0,\"event\":\"cluster_reset\"}");
}

TEST(EventLog, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(EventLog, EventEqualityIsFieldwise) {
  CampaignEvent a;
  a.kind = CampaignEventKind::kVariance;
  a.value = 0.5;
  CampaignEvent b = a;
  EXPECT_EQ(a, b);
  b.value2 = 0.1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace themis
